package domino

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5) as testing.B benchmarks, reporting the figures the paper
// reports via b.ReportMetric:
//
//	BenchmarkTable3AtomAreas            — Table 3 (area µm² per atom)
//	BenchmarkTable4Algorithms           — Table 4 (stages, atoms/stage, LOC)
//	BenchmarkTable5PerfVsProgrammability— Table 5 (delay, #algorithms, Gpps)
//	BenchmarkTable6CircuitDepth         — Table 6 (min delay per circuit)
//	BenchmarkCompileTime                — §5.3 compile times (incl. CoDel rejection)
//	BenchmarkResourceProvisioning       — §5.2 chip budget
//	BenchmarkFigure3FlowletPipeline     — Figure 3b (6-stage flowlet pipeline)
//	BenchmarkFigure9DependencyGraph     — Figure 9 (dep graph + SCC condensation)
//	BenchmarkMachineThroughput          — simulator packets/sec (compiled pipeline)
//	BenchmarkInterpreterThroughput      — sequential reference, for comparison
//	BenchmarkSynthesis                  — codelet→atom mapping per hierarchy level

import (
	"fmt"
	"testing"

	"domino/internal/algorithms"
	"domino/internal/ast"
	"domino/internal/atoms"
	"domino/internal/banzai"
	"domino/internal/codegen"
	"domino/internal/hw"
	"domino/internal/interp"
	"domino/internal/netsim"
	"domino/internal/p4gen"
	"domino/internal/parser"
	"domino/internal/passes"
	"domino/internal/pifo"
	"domino/internal/pvsm"
	"domino/internal/sema"
	"domino/internal/switchsim"
	"domino/internal/synth"
	"domino/internal/telemetry"
	"domino/internal/workload"
)

func mustFront(b *testing.B, src string) (*sema.Info, *passes.NormResult) {
	b.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		b.Fatal(err)
	}
	norm, err := passes.Normalize(info)
	if err != nil {
		b.Fatal(err)
	}
	return info, norm
}

// BenchmarkTable3AtomAreas regenerates Table 3: the area of each atom.
func BenchmarkTable3AtomAreas(b *testing.B) {
	kinds := append([]atoms.Kind{atoms.Stateless}, atoms.StatefulHierarchy...)
	for _, k := range kinds {
		b.Run(k.String(), func(b *testing.B) {
			var area float64
			for i := 0; i < b.N; i++ {
				area = hw.CircuitFor(k).Area()
			}
			b.ReportMetric(area, "area_um2")
			b.ReportMetric(hw.PaperArea[k], "paper_um2")
		})
	}
}

// BenchmarkTable4Algorithms regenerates Table 4: compile each algorithm to
// its least expressive target and report the pipeline statistics.
func BenchmarkTable4Algorithms(b *testing.B) {
	for _, a := range algorithms.All() {
		b.Run(a.Name, func(b *testing.B) {
			info, norm := mustFront(b, a.Source)
			if !a.Maps {
				pl, err := pvsm.Build(norm.IR)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(pl.NumStages()), "stages")
				b.ReportMetric(float64(pl.MaxAtomsPerStage()), "atoms/stage")
				b.ReportMetric(0, "maps")
				return
			}
			var p *codegen.Program
			for i := 0; i < b.N; i++ {
				var ok bool
				var err error
				p, ok, err = codegen.LeastTarget(info, norm.IR)
				if !ok {
					b.Fatal(err)
				}
			}
			if p.Target.StatefulAtom != a.LeastAtom {
				b.Fatalf("least atom %s, want %s", p.Target.StatefulAtom, a.LeastAtom)
			}
			b.ReportMetric(float64(p.NumStages()), "stages")
			b.ReportMetric(float64(p.MaxAtomsPerStage()), "atoms/stage")
			b.ReportMetric(float64(ast.CountLOC(a.Source)), "domino_loc")
			b.ReportMetric(float64(p4gen.LOC(p)), "p4_loc")
			b.ReportMetric(1, "maps")
		})
	}
}

// BenchmarkTable5PerfVsProgrammability regenerates Table 5.
func BenchmarkTable5PerfVsProgrammability(b *testing.B) {
	counts := map[atoms.Kind]int{}
	for _, a := range algorithms.All() {
		if !a.Maps {
			continue
		}
		for _, k := range atoms.StatefulHierarchy {
			if k.Contains(a.LeastAtom) {
				counts[k]++
			}
		}
	}
	for _, k := range atoms.StatefulHierarchy {
		b.Run(k.String(), func(b *testing.B) {
			var delay, rate float64
			for i := 0; i < b.N; i++ {
				c := hw.CircuitFor(k)
				delay, rate = c.MinDelay(), c.MaxLineRateGpps()
			}
			b.ReportMetric(delay, "delay_ps")
			b.ReportMetric(float64(counts[k]), "algorithms")
			b.ReportMetric(rate, "Gpps")
		})
	}
}

// BenchmarkTable6CircuitDepth regenerates Table 6: the minimum delay of the
// three drawn circuits.
func BenchmarkTable6CircuitDepth(b *testing.B) {
	for _, k := range []atoms.Kind{atoms.Write, atoms.ReadAddWrite, atoms.PRAW} {
		b.Run(k.String(), func(b *testing.B) {
			var d float64
			var depth int
			for i := 0; i < b.N; i++ {
				c := hw.CircuitFor(k)
				d = c.MinDelay()
				depth = len(c.Path)
			}
			b.ReportMetric(d, "delay_ps")
			b.ReportMetric(float64(depth), "path_components")
		})
	}
}

// BenchmarkCompileTime regenerates the §5.3 compile-time discussion: the
// wall time to accept each algorithm (or reject CoDel on all 7 targets).
func BenchmarkCompileTime(b *testing.B) {
	for _, a := range algorithms.All() {
		b.Run(a.Name, func(b *testing.B) {
			info, norm := mustFront(b, a.Source)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				codegen.LeastTarget(info, norm.IR)
			}
		})
	}
}

// BenchmarkResourceProvisioning regenerates the §5.2 chip budget.
func BenchmarkResourceProvisioning(b *testing.B) {
	var p hw.Provisioning
	for i := 0; i < b.N; i++ {
		p = hw.Provision(atoms.Pairs)
	}
	b.ReportMetric(float64(p.StatelessAtomsPerStage), "stateless/stage")
	b.ReportMetric(float64(p.StatefulPerStage), "stateful/stage")
	b.ReportMetric(p.TotalOverheadPct, "overhead_pct")
}

// BenchmarkFigure3FlowletPipeline regenerates Figure 3b: flowlet switching
// compiled end to end.
func BenchmarkFigure3FlowletPipeline(b *testing.B) {
	a, _ := algorithms.ByName("flowlets")
	var p *Program
	for i := 0; i < b.N; i++ {
		var err error
		p, err = CompileLeast(a.Source)
		if err != nil {
			b.Fatal(err)
		}
	}
	if p.NumStages() != 6 || p.MaxAtomsPerStage() != 2 {
		b.Fatalf("flowlet pipeline %d/%d, want 6/2", p.NumStages(), p.MaxAtomsPerStage())
	}
	b.ReportMetric(float64(p.NumStages()), "stages")
	b.ReportMetric(float64(p.MaxAtomsPerStage()), "atoms/stage")
}

// BenchmarkFigure9DependencyGraph times dependency analysis + SCC
// condensation on the flowlet program.
func BenchmarkFigure9DependencyGraph(b *testing.B) {
	a, _ := algorithms.ByName("flowlets")
	_, norm := mustFront(b, a.Source)
	for i := 0; i < b.N; i++ {
		g := pvsm.BuildGraph(norm.IR)
		if len(g.SCCs()) == 0 {
			b.Fatal("no SCCs")
		}
	}
}

// BenchmarkSynthesis times codelet→atom mapping per hierarchy level, the
// operation that dominated the paper's compile times under SKETCH.
func BenchmarkSynthesis(b *testing.B) {
	cases := map[string]string{
		"RAW": `
struct Packet { int v; };
int x;
void t(struct Packet pkt) { x = x + pkt.v; }
`,
		"PRAW": `
struct Packet { int v; };
int x;
void t(struct Packet pkt) { if (pkt.v < 30) { x = x + pkt.v; } }
`,
		"Nested": `
struct Packet { int fresh; };
int x;
void t(struct Packet pkt) {
  if (pkt.fresh == 1) { if (x < 31) { x = x + 1; } } else { x = 0; }
}
`,
	}
	for name, src := range cases {
		b.Run(name, func(b *testing.B) {
			_, norm := mustFront(b, src)
			pl, err := pvsm.Build(norm.IR)
			if err != nil {
				b.Fatal(err)
			}
			var target *pvsm.Codelet
			for _, st := range pl.Stages {
				for _, c := range st {
					if c.Stateful() {
						target = c
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := synth.MapCodelet(target, synth.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// throughputCase wires one catalog algorithm to its trace generators in
// both packet representations.
type throughputCase struct {
	name    string
	trace   []interp.Packet
	headers func(l *Layout) []Header
}

func throughputCases() []throughputCase {
	return []throughputCase{
		{
			name:    "flowlets",
			trace:   workload.FlowletTrace(1, 100, 4096, 10, 50),
			headers: func(l *Layout) []Header { return workload.FlowletTraceHeaders(l, 1, 100, 4096, 10, 50) },
		},
		{
			name:  "heavy_hitters",
			trace: firstOf(workload.HeavyHitterTrace(1, 1000, 4096, 1.2)),
			headers: func(l *Layout) []Header {
				hs, _ := workload.HeavyHitterTraceHeaders(l, 1, 1000, 4096, 1.2)
				return hs
			},
		},
		{
			name:    "conga",
			trace:   workload.CongaTrace(1, 16, 64, 4096),
			headers: func(l *Layout) []Header { return workload.CongaTraceHeaders(l, 1, 16, 64, 4096) },
		},
	}
}

func throughputMachine(b *testing.B, name string) *Machine {
	b.Helper()
	src, err := CatalogSource(name)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := CompileLeast(src)
	if err != nil {
		b.Fatal(err)
	}
	m, err := prog.NewMachine()
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkMachineThroughput measures simulated packets per second through
// the compiled Banzai pipeline for each compiling algorithm, with the
// map-based slow path and the slot-vector header fast path side by side.
// The header paths must show 0 allocs/op at steady state; allocs/op is
// reported so regressions show up in BENCH_*.json snapshots.
func BenchmarkMachineThroughput(b *testing.B) {
	for _, tc := range throughputCases() {
		// Map path: the interp.Packet codec runs per packet.
		b.Run(tc.name+"/map", func(b *testing.B) {
			m := throughputMachine(b, tc.name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Tick(tc.trace[i&4095])
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
		// Header path: slot vectors end to end, one TickH per cycle.
		// Departing headers rotate back in as later inputs, so the steady
		// state touches the pool and the codec not at all.
		b.Run(tc.name+"/header", func(b *testing.B) {
			m := throughputMachine(b, tc.name)
			hs := tc.headers(m.Layout())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.TickH(hs[i&4095])
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
		// Batch path: whole-pipeline execution per header, amortized
		// bookkeeping, batches of 1024.
		b.Run(tc.name+"/batch", func(b *testing.B) {
			m := throughputMachine(b, tc.name)
			hs := tc.headers(m.Layout())
			const batch = 1024
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (i & 3) * batch
				if err := m.ProcessBatch(hs[off : off+batch]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "pkts/s")
		})
		// Stage-major batch: all headers through stage s, then s+1 —
		// bit-identical results, one stage's op program and state hot at
		// a time.
		b.Run(tc.name+"/batch_stage", func(b *testing.B) {
			m := throughputMachine(b, tc.name)
			hs := tc.headers(m.Layout())
			const batch = 1024
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (i & 3) * batch
				if err := m.ProcessBatchStageMajor(hs[off : off+batch]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkShardedThroughput measures the RSS-style multi-pipeline
// simulator: one ShardedMachine with per-shard state, steering by flow key,
// batches of 4096 fanned out to the shard goroutines.
func BenchmarkShardedThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("flowlets/shards=%d", shards), func(b *testing.B) {
			src, err := CatalogSource("flowlets")
			if err != nil {
				b.Fatal(err)
			}
			prog, err := CompileLeast(src)
			if err != nil {
				b.Fatal(err)
			}
			sm, err := prog.NewSharded(shards, "sport", "dport")
			if err != nil {
				b.Fatal(err)
			}
			defer sm.Close()
			const batch = 4096
			hs := workload.FlowletTraceHeaders(sm.Layout(), 1, 256, batch, 10, 50)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sm.ProcessBatch(hs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "pkts/s")
			b.ReportMetric(float64(shards), "shards")
		})
	}
}

func firstOf(tr []interp.Packet, _ map[workload.Flow]int) []interp.Packet { return tr }

// BenchmarkSchedulerThroughput measures the PIFO scheduling subsystem's
// hot path: compiled rank transaction → PIFO push → PIFO pop, per packet,
// on the multi-tenant workload. Steady state is a 1:1 enqueue/dequeue
// cycle over a prefilled queue; allocs/op must stay 0 (the acceptance bar
// for the scheduler data path), and pkts/s is reported for BENCH_*.json.
func BenchmarkSchedulerThroughput(b *testing.B) {
	ingress := func(b *testing.B) *codegen.Program {
		b.Helper()
		p, err := codegen.CompileLeastSource(algorithms.SchedIngress)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		tree func(b *testing.B) *pifo.Tree
	}{
		{"fifo_const_rank", func(b *testing.B) *pifo.Tree {
			return pifo.Flat(pifo.RankSpec{Source: algorithms.ConstRank})
		}},
		{"stfq", func(b *testing.B) *pifo.Tree {
			return pifo.Flat(mustNamedSpec(b, "stfq_rank"))
		}},
		{"strict_priority", func(b *testing.B) *pifo.Tree {
			return pifo.Flat(mustNamedSpec(b, "strict_priority_rank"))
		}},
		{"wrr", func(b *testing.B) *pifo.Tree {
			return pifo.Flat(mustNamedSpec(b, "wrr_rank"))
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			prog := ingress(b)
			m, err := banzai.New(prog)
			if err != nil {
				b.Fatal(err)
			}
			qs, err := tc.tree(b).Build(m.Layout(), 1)
			if err != nil {
				b.Fatal(err)
			}
			q := qs[0]
			tenants := []workload.TenantSpec{
				{Weight: 1, Flows: 4}, {Weight: 2, Flows: 4}, {Weight: 4, Flows: 4},
			}
			hs, _ := workload.MultiTenantTraceHeaders(m.Layout(), 1, tenants, 4096, 4)
			for i := 0; i < 512; i++ {
				q.Enqueue(switchsim.QueuedHeader{H: hs[i], Size: 256, Arrived: int64(i), Seq: int64(i)})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Enqueue(switchsim.QueuedHeader{H: hs[(512+i)&4095], Size: 256, Arrived: int64(i), Seq: int64(i)})
				if _, ok := q.Dequeue(int64(i)); !ok {
					b.Fatal("dequeue failed")
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkSwitchSchedulerThroughput measures the end-to-end switch data
// path (ingress pipeline → rank transaction → PIFO → drain) with FIFO and
// STFQ egress schedulers side by side, on the header fast path.
func BenchmarkSwitchSchedulerThroughput(b *testing.B) {
	for _, tc := range []struct {
		name  string
		sched func(b *testing.B) switchsim.Scheduler
	}{
		{"fifo", func(b *testing.B) switchsim.Scheduler { return nil }},
		{"pifo_stfq", func(b *testing.B) switchsim.Scheduler {
			return pifo.Flat(mustNamedSpec(b, "stfq_rank"))
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			prog, err := codegen.CompileLeastSource(algorithms.SchedIngress)
			if err != nil {
				b.Fatal(err)
			}
			sw, err := switchsim.New(prog, switchsim.Config{
				Ports:               4,
				ServiceBytesPerTick: 2048,
				QueueCapBytes:       1 << 24,
				Scheduler:           tc.sched(b),
			})
			if err != nil {
				b.Fatal(err)
			}
			tenants := []workload.TenantSpec{
				{Weight: 1, Flows: 4}, {Weight: 2, Flows: 4}, {Weight: 4, Flows: 4},
			}
			hs, _ := workload.MultiTenantTraceHeaders(sw.Machine().Layout(), 1, tenants, 4096, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := sw.Machine().AcquireHeader()
				copy(h, hs[i&4095])
				if _, _, err := sw.InjectH(h, 256); err != nil {
					b.Fatal(err)
				}
				if i&7 == 7 {
					sw.Tick()
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkNetThroughput measures the multi-switch network data path —
// host inject → leaf pipeline → core link → spine pipeline → link →
// leaf → sink — on a 4-leaf/2-spine fabric, one sub-benchmark per
// routing policy. After warmup (which sizes the header pools and link
// rings), the hot path performs no allocation: headers travel
// host→switch→link→switch as pooled slot vectors under the netsim
// ownership contract and are decoded nowhere.
func BenchmarkNetThroughput(b *testing.B) {
	for _, routing := range []string{"ecmp_route", "flowlet_route", "conga_route"} {
		b.Run(routing, func(b *testing.B) {
			cfg := netsim.ExperimentConfig{Routing: routing, Seed: 1}
			ls, _, err := cfg.Build()
			if err != nil {
				b.Fatal(err)
			}
			if err := ls.Net.MapHosts(ls.Hosts); err != nil {
				b.Fatal(err)
			}
			pkts := cfg.Trace().Packets
			// Warmup: one full trace replay at the benchmark's pacing grows
			// every pool and ring to steady state.
			for i := range pkts {
				if err := ls.Net.InjectNow(&pkts[i]); err != nil {
					b.Fatal(err)
				}
				if i&3 == 3 {
					ls.Net.Tick()
				}
			}
			if err := ls.Net.Drain(1 << 20); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ls.Net.InjectNow(&pkts[i%len(pkts)]); err != nil {
					b.Fatal(err)
				}
				if i&3 == 3 {
					ls.Net.Tick()
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
			b.StopTimer()
			if err := ls.Net.CheckConservation(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFatTreeEventThroughput measures the event-driven core (PR 10)
// end to end: a k=4 fat tree of compiled-pipeline switches drains a
// heavy-tailed flow-arrival trace per iteration via the calendar queue,
// jumping over the idle gaps between Poisson bursts. The trace is
// regenerated with shifted arrivals each replay (the simulated clock
// never rewinds); pkts/s counts delivered packets and ticks/s the
// simulated time covered — the figure the idle-skip buys.
func BenchmarkFatTreeEventThroughput(b *testing.B) {
	cfg := netsim.FatTreeExperimentConfig{
		Routing: "ecmp_route", K: 4, Seed: 1,
		Flows: 64, MeanGapTicks: 200, MaxPkts: 64,
	}
	ft, _, err := cfg.Build()
	if err != nil {
		b.Fatal(err)
	}
	base := cfg.Trace()
	var delivered, ticks int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Shift every arrival past the current clock: trace ticks are
		// absolute, and the fabric's time only moves forward.
		tr := *base
		tr.Packets = append([]workload.NetPacket(nil), base.Packets...)
		tr.FlowStart = append([]int64(nil), base.FlowStart...)
		off := ft.Net.Now() + 1
		for j := range tr.Packets {
			tr.Packets[j].Arrival += off
		}
		for j := range tr.FlowStart {
			tr.FlowStart[j] += off
		}
		if err := ft.Net.SetTrace(&tr, ft.Hosts); err != nil {
			b.Fatal(err)
		}
		before := ft.Net.Totals().DeliveredPkts
		start := ft.Net.Now()
		b.StartTimer()
		if err := ft.Net.Drain(1 << 22); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		delivered += ft.Net.Totals().DeliveredPkts - before
		ticks += ft.Net.Now() - start
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "pkts/s")
	b.ReportMetric(float64(ticks)/b.Elapsed().Seconds(), "ticks/s")
	if err := ft.Net.CheckConservation(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTelemetryNetThroughput prices the observability plane (PR 8):
// the same INT-stamping ECMP fabric with telemetry off (nil sink — every
// instrument is a nil no-op, the hot path must stay allocation-free) and
// on (a live registry plus a sampled event ring). The two pkts/s figures
// bound what full observability costs; the contract is under 5%.
func BenchmarkTelemetryNetThroughput(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			cfg := netsim.ExperimentConfig{Routing: "ecmp_route", Seed: 1, INT: true}
			if mode == "on" {
				cfg.Telemetry = telemetry.NewRegistry()
				cfg.Ring = telemetry.NewRing(4096, 16, 1)
			}
			ls, _, err := cfg.Build()
			if err != nil {
				b.Fatal(err)
			}
			if err := ls.Net.MapHosts(ls.Hosts); err != nil {
				b.Fatal(err)
			}
			pkts := cfg.Trace().Packets
			for i := range pkts {
				if err := ls.Net.InjectNow(&pkts[i]); err != nil {
					b.Fatal(err)
				}
				if i&3 == 3 {
					ls.Net.Tick()
				}
			}
			if err := ls.Net.Drain(1 << 20); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ls.Net.InjectNow(&pkts[i%len(pkts)]); err != nil {
					b.Fatal(err)
				}
				if i&3 == 3 {
					ls.Net.Tick()
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
			b.StopTimer()
			if err := ls.Net.CheckConservation(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkReliableNetThroughput measures the reliable-transport data
// path — timer-wheel pacing, sequence/checksum stamping, ECN-marked
// pipelines, sink-side dedup and cumulative ACKs riding the feedback
// reflection — on the healthy 4-leaf/2-spine ECMP fabric. The trace
// replays in a loop via Transport.Reset; the metric counts exactly-once
// acceptances. After warmup the whole loop allocates nothing.
func BenchmarkReliableNetThroughput(b *testing.B) {
	cfg := netsim.ExperimentConfig{Routing: "ecmp_route", Seed: 1, ECN: true}
	ls, _, err := cfg.Build()
	if err != nil {
		b.Fatal(err)
	}
	if err := ls.Net.SetTrace(cfg.Trace(), ls.Hosts); err != nil {
		b.Fatal(err)
	}
	tp, err := ls.Net.EnableTransport(netsim.TransportConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	// Warmup: one full reliable replay sizes every pool and ring.
	if err := ls.Net.Drain(1 << 20); err != nil {
		b.Fatal(err)
	}
	start := ls.Net.Totals().AcceptedPkts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tp.Done() {
			if err := tp.Reset(); err != nil {
				b.Fatal(err)
			}
		}
		ls.Net.Tick()
	}
	accepted := ls.Net.Totals().AcceptedPkts - start
	b.ReportMetric(float64(accepted)/b.Elapsed().Seconds(), "pkts/s")
	b.StopTimer()
	if err := ls.Net.CheckConservation(); err != nil {
		b.Fatal(err)
	}
}

func mustNamedSpec(b *testing.B, name string) pifo.RankSpec {
	b.Helper()
	spec, err := pifo.NamedSpec(name)
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// BenchmarkInterpreterThroughput is the sequential reference semantics —
// the software-router baseline the compiled pipeline is compared against.
func BenchmarkInterpreterThroughput(b *testing.B) {
	src, err := CatalogSource("flowlets")
	if err != nil {
		b.Fatal(err)
	}
	ip, err := NewInterpreter(src)
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.FlowletTrace(1, 100, 4096, 10, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ip.Run(trace[i&4095].Clone()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkP4Generation times the P4 backend (§5.1).
func BenchmarkP4Generation(b *testing.B) {
	src, _ := CatalogSource("flowlets")
	prog, err := CompileLeast(src)
	if err != nil {
		b.Fatal(err)
	}
	var n int
	for i := 0; i < b.N; i++ {
		n = prog.P4LOC()
	}
	b.ReportMetric(float64(n), "p4_loc")
	b.ReportMetric(float64(prog.DominoLOC()), "domino_loc")
}

// BenchmarkOptimizer reports what the machine-build-time optimizer does
// to each compiling catalog algorithm and each scheduler rank transaction
// (ops and slots before/after, plus the build cost) — the measured, not
// assumed, payoff of the PR 4 optimizer. Rank transactions build with
// their liveness roots narrowed to the rank field, exactly as the pifo
// engines build them.
func BenchmarkOptimizer(b *testing.B) {
	report := func(b *testing.B, m *banzai.Machine) {
		st := m.OptStats()
		b.ReportMetric(float64(st.OpsBefore), "ops_pre")
		b.ReportMetric(float64(st.OpsAfter), "ops_post")
		b.ReportMetric(float64(st.SlotsBefore), "slots_pre")
		b.ReportMetric(float64(st.SlotsAfter), "slots_post")
		b.ReportMetric(float64(st.AtomsBefore), "atoms_pre")
		b.ReportMetric(float64(st.AtomsAfter), "atoms_post")
	}
	for _, a := range algorithms.All() {
		if !a.Maps {
			continue
		}
		b.Run(a.Name, func(b *testing.B) {
			p, err := codegen.CompileLeastSource(a.Source)
			if err != nil {
				b.Fatal(err)
			}
			var m *banzai.Machine
			for i := 0; i < b.N; i++ {
				if m, err = banzai.New(p); err != nil {
					b.Fatal(err)
				}
			}
			report(b, m)
		})
	}
	for _, s := range algorithms.Schedulers() {
		b.Run(s.Name, func(b *testing.B) {
			p, err := codegen.CompileLeastSource(s.Source)
			if err != nil {
				b.Fatal(err)
			}
			var m *banzai.Machine
			for i := 0; i < b.N; i++ {
				m, err = banzai.NewWith(p, banzai.Options{OutputFields: []string{s.RankField}})
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, m)
		})
	}
}

// BenchmarkAblationCleanupPass quantifies what the cleanup pass buys: stage
// count with and without copy propagation/DCE (the DESIGN.md ablation).
func BenchmarkAblationCleanupPass(b *testing.B) {
	a, _ := algorithms.ByName("flowlets")
	_, norm := mustFront(b, a.Source)
	with, err := pvsm.Build(norm.IR)
	if err != nil {
		b.Fatal(err)
	}
	without, err := pvsm.Build(norm.Raw)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = fmt.Sprintf("%d%d", with.NumCodelets(), without.NumCodelets())
	}
	b.ReportMetric(float64(with.NumCodelets()), "codelets_cleaned")
	b.ReportMetric(float64(without.NumCodelets()), "codelets_raw")
	b.ReportMetric(float64(with.MaxAtomsPerStage()), "atoms/stage_cleaned")
	b.ReportMetric(float64(without.MaxAtomsPerStage()), "atoms/stage_raw")
}
