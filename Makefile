GO ?= go
# bash for pipefail in the bench recipe.
SHELL := /bin/bash

# BENCH_OUT is the committed per-PR benchmark snapshot `make bench` emits;
# BENCH_BASE is the previous PR's snapshot bench-delta compares against.
BENCH_OUT ?= BENCH_pr4.json
BENCH_BASE ?= BENCH_pr3.json

.PHONY: check fmt vet build test race bench bench-smoke bench-delta

check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the packages with mutable queue/scheduler state; CI runs this.
race:
	$(GO) test -race ./internal/pifo/... ./internal/switchsim/...

# bench runs the throughput benchmarks (pkts/s and allocs/op per workload
# and execution path) and snapshots them to $(BENCH_OUT). pipefail so a
# failing benchmark run can't silently overwrite the snapshot.
bench:
	set -o pipefail; $(GO) test . -run xxx -bench 'Throughput' -benchtime 1s \
		| $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# bench-smoke executes every benchmark once so benchmark code can't bitrot;
# CI runs this.
bench-smoke:
	$(GO) test . -run xxx -bench . -benchtime 1x

# bench-delta prints per-benchmark pkts/s ratios between the previous
# PR's snapshot and the current one (new/old; >1 is faster).
bench-delta:
	$(GO) run ./cmd/benchjson -delta $(BENCH_BASE) $(BENCH_OUT)
