GO ?= go
# bash for pipefail in the bench recipe.
SHELL := /bin/bash

# BENCH_OUT is the committed per-PR benchmark snapshot `make bench` emits;
# BENCH_BASE is the previous PR's snapshot bench-delta compares against.
BENCH_OUT ?= BENCH_pr10.json
BENCH_BASE ?= BENCH_pr9.json
# MAX_LOSS is the bench-regression gate: any benchmark present in both
# snapshots losing more than this percent of throughput fails the build.
MAX_LOSS ?= 10

.PHONY: check fmt vet build test race bench bench-smoke bench-delta bench-regression fuzz-smoke cover-net staticcheck profile soak soak-smoke fct-smoke

check: fmt vet staticcheck build test race fuzz-smoke soak-smoke fct-smoke cover-net

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools when a binary is on PATH. In CI
# (where the workflow installs a pinned version) a missing binary is a
# hard failure; locally it degrades to a skip, since the toolchain image
# does not bake it in and fetching it would need the network.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ -n "$$CI" ]; then \
		echo "staticcheck is a required CI gate but is not installed"; exit 1; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the packages with mutable queue/scheduler/network state;
# CI runs this. netsim's determinism tests run here too, so the sharded
# flow-pinned data path is exercised under the race detector's schedule
# perturbation.
race:
	$(GO) test -race ./internal/pifo/... ./internal/switchsim/... ./internal/netsim/...

# fuzz-smoke replays the checked-in seed corpora (testdata/fuzz/...)
# through every native fuzz target as ordinary tests — deterministic, so
# CI can run it. Use `go test -fuzz <name>` in the package for real
# fuzzing; minimized crashes land in the corpus directories.
fuzz-smoke:
	$(GO) test ./internal/banzai -run 'FuzzOptimizerDifferential' -count=1
	$(GO) test ./internal/netsim -run 'FuzzNetTopology|FuzzNetFaults|FuzzReliableTransport' -count=1

# cover-net gates the switch + network simulator + telemetry layers:
# their combined statement coverage (from their own package tests) must
# stay >= 80%.
COVER_MIN ?= 80
cover-net:
	$(GO) test -coverprofile=cover-net.out \
		-coverpkg=./internal/switchsim/...,./internal/netsim/...,./internal/telemetry/... \
		./internal/switchsim/... ./internal/netsim/... ./internal/telemetry/...
	@total=$$($(GO) tool cover -func=cover-net.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	rm -f cover-net.out; \
	echo "switchsim+netsim+telemetry combined statement coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit (t+0 < m+0) ? 1 : 0 }' \
		|| { echo "coverage dropped below $(COVER_MIN)%"; exit 1; }

# bench runs the throughput benchmarks (pkts/s and allocs/op per workload
# and execution path) and snapshots them to $(BENCH_OUT). Three counts per
# benchmark; benchjson keeps the best sample, so one noisy-low pass on a
# shared machine doesn't become the committed number. pipefail so a
# failing benchmark run can't silently overwrite the snapshot.
bench:
	set -o pipefail; $(GO) test . -run xxx -bench 'Throughput' -benchtime 1s -count 3 \
		| $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# bench-smoke executes every benchmark once so benchmark code can't bitrot;
# CI runs this.
bench-smoke:
	$(GO) test . -run xxx -bench . -benchtime 1x

# bench-delta prints per-benchmark pkts/s ratios between the previous
# PR's snapshot and the current one (new/old; >1 is faster).
bench-delta:
	$(GO) run ./cmd/benchjson -delta $(BENCH_BASE) $(BENCH_OUT)

# bench-regression is bench-delta as a gate: exit non-zero if any common
# benchmark lost more than $(MAX_LOSS)% of its throughput; CI runs this
# against the committed snapshots.
bench-regression:
	$(GO) run ./cmd/benchjson -delta -maxloss $(MAX_LOSS) $(BENCH_BASE) $(BENCH_OUT)

# soak runs the full chaos soak: 1000 seeded random gray-failure
# schedules (reorder, duplication, flaps, restarts, crashes, corruption)
# over small fabrics, each tick checked against the conservation and
# pool-leak oracles, with sampled byte-identical replays. SOAK_RUNS
# scales it.
SOAK_RUNS ?= 1000
soak:
	$(GO) run ./cmd/paper-eval -soak $(SOAK_RUNS)

# soak-smoke is the time-budgeted slice CI runs: enough schedules to
# cover every fault kind, both transport modes and all three routings.
soak-smoke:
	$(GO) test ./internal/netsim -run 'TestChaosSoakSmoke' -count=1

# fct-smoke is the time-budgeted fat-tree slice CI runs: the k=4
# tick-vs-event differential plus a small end-to-end -fct report (k=4),
# which itself asserts the event and polled cores agree on totals.
fct-smoke:
	$(GO) test ./internal/netsim -run 'TestEventCoreDifferentialFatTree|TestFatTreeFCTConservation' -count=1
	$(GO) run ./cmd/paper-eval -fct -k 4

# profile writes a CPU profile of the leaf-spine network experiment;
# inspect with `go tool pprof cpu.prof`.
profile:
	$(GO) run ./cmd/paper-eval -pprof cpu.prof -net
	@echo "wrote cpu.prof; inspect with: $(GO) tool pprof cpu.prof"
