package domino

import (
	"fmt"

	"domino/internal/ast"
	"domino/internal/interp"
	"domino/internal/parser"
	"domino/internal/token"
)

// Guard is a predicate over packet fields that triggers a transaction
// (paper §3.3): "a predicate on packet fields that triggers the transaction
// whenever a packet matches the guard". Guards map straightforwardly to the
// match key of a match-action table; this implementation evaluates them in
// front of the compiled pipeline.
type Guard struct {
	expr ast.Expr
	src  string
	// compiled caches the predicate lowered to a slot-vector closure, one
	// per layout (EvalH). Guards follow the machines' single-caller
	// contract; the cache is not synchronized.
	compiled map[*Layout]guardFn
}

// guardFn is a guard predicate compiled against a Layout's slots.
type guardFn func(h Header) int32

// ParseGuard parses a guard predicate, e.g. "pkt.tcp_dst_port == 80".
// Guards may reference packet fields and constants; they cannot touch
// switch state (the match half of a match-action table is stateless).
func ParseGuard(src string) (*Guard, error) {
	e, err := parser.ParseExpr(src)
	if err != nil {
		return nil, fmt.Errorf("domino: invalid guard: %w", err)
	}
	var bad error
	ast.Walk(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			bad = fmt.Errorf("domino: guard reads %q; guards may only reference packet fields and constants", x.Name)
			return false
		case *ast.IndexExpr:
			bad = fmt.Errorf("domino: guard indexes state array %q; guards must be stateless", x.Name)
			return false
		case *ast.CallExpr:
			bad = fmt.Errorf("domino: guard calls %q; guards must be pure field predicates", x.Fun)
			return false
		}
		return true
	})
	if bad != nil {
		return nil, bad
	}
	return &Guard{expr: e, src: src}, nil
}

// String returns the guard's source form.
func (g *Guard) String() string { return g.src }

// Match evaluates the guard against a packet. Missing fields read as zero,
// like any unset header field.
func (g *Guard) Match(pkt Packet) bool {
	return evalGuard(g.expr, pkt) != 0
}

// EvalH evaluates the guard against a slot-vector header on the
// allocation-free fast path, so callers (switchsim, policies) can gate
// transactions without the map codec. The predicate is compiled against
// the layout's slots once, on first use per layout, and cached; fields the
// layout doesn't know read as zero, matching Match on a missing map key.
// Semantics are identical to Match: same operator table, no short-circuit.
func (g *Guard) EvalH(l *Layout, h Header) bool {
	fn, ok := g.compiled[l]
	if !ok {
		fn = compileGuard(g.expr, l)
		if g.compiled == nil {
			g.compiled = map[*Layout]guardFn{}
		}
		g.compiled[l] = fn
	}
	return fn(h) != 0
}

// compileGuard lowers a guard expression to a closure tree over header
// slots: field→slot resolution, operator selection and constant folding
// all happen here, once, not per packet.
func compileGuard(e ast.Expr, l *Layout) guardFn {
	switch x := e.(type) {
	case *ast.IntLit:
		v := x.Value
		return func(h Header) int32 { return v }
	case *ast.FieldExpr:
		slot, ok := l.Slot(x.Field)
		if !ok {
			// Unknown to this layout: reads as zero, like a missing map key.
			return func(h Header) int32 { return 0 }
		}
		return func(h Header) int32 { return h[slot] }
	case *ast.UnaryExpr:
		sub := compileGuard(x.X, l)
		switch x.Op {
		case token.Minus:
			return func(h Header) int32 { return -sub(h) }
		case token.Not:
			return func(h Header) int32 {
				if sub(h) == 0 {
					return 1
				}
				return 0
			}
		case token.BitNot:
			return func(h Header) int32 { return ^sub(h) }
		}
	case *ast.BinaryExpr:
		fa := compileGuard(x.X, l)
		fb := compileGuard(x.Y, l)
		if f, ok := interp.BinFunc(x.Op); ok {
			return func(h Header) int32 { return f(fa(h), fb(h)) }
		}
	case *ast.CondExpr:
		fc := compileGuard(x.Cond, l)
		ft := compileGuard(x.Then, l)
		fe := compileGuard(x.Else, l)
		return func(h Header) int32 {
			if fc(h) != 0 {
				return ft(h)
			}
			return fe(h)
		}
	}
	// Anything else evaluates to zero, matching evalGuard's fallthrough.
	return func(h Header) int32 { return 0 }
}

func evalGuard(e ast.Expr, pkt Packet) int32 {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value
	case *ast.FieldExpr:
		return pkt[x.Field]
	case *ast.UnaryExpr:
		v := evalGuard(x.X, pkt)
		r, _ := interp.EvalUnary(x.Op, v)
		return r
	case *ast.BinaryExpr:
		a := evalGuard(x.X, pkt)
		b := evalGuard(x.Y, pkt)
		r, _ := interp.EvalBinary(x.Op, a, b)
		return r
	case *ast.CondExpr:
		if evalGuard(x.Cond, pkt) != 0 {
			return evalGuard(x.Then, pkt)
		}
		return evalGuard(x.Else, pkt)
	}
	return 0
}

// Rule pairs a guard with a compiled transaction (paper §3.4's policy
// element). A nil guard matches every packet.
type Rule struct {
	Guard   *Guard
	Program *Program
}

// Policy is an ordered list of guard→transaction rules: the §3.4 policy
// language for disjoint guards. A packet is processed by the first rule
// whose guard matches (first-match disambiguates overlapping guards; the
// paper leaves richer composition semantics to future work, and so do we).
type Policy struct {
	rules    []Rule
	machines []*Machine
}

// NewPolicy instantiates one machine per rule.
func NewPolicy(rules []Rule) (*Policy, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("domino: policy needs at least one rule")
	}
	p := &Policy{rules: rules}
	for i, r := range rules {
		if r.Program == nil {
			return nil, fmt.Errorf("domino: rule %d has no program", i)
		}
		m, err := r.Program.NewMachine()
		if err != nil {
			return nil, err
		}
		p.machines = append(p.machines, m)
	}
	return p, nil
}

// Process runs pkt through the first matching rule's pipeline. It returns
// the processed packet and the rule index, or matched=false (packet passes
// through unmodified) when no guard matches.
func (p *Policy) Process(pkt Packet) (out Packet, rule int, matched bool, err error) {
	for i, r := range p.rules {
		if r.Guard == nil || r.Guard.Match(pkt) {
			out, err = p.machines[i].Process(pkt)
			return out, i, true, err
		}
	}
	return pkt, -1, false, nil
}

// Machine returns the machine instantiated for rule i (for state access).
func (p *Policy) Machine(i int) *Machine { return p.machines[i] }
