package domino

import (
	"fmt"

	"domino/internal/ast"
	"domino/internal/interp"
	"domino/internal/parser"
)

// Guard is a predicate over packet fields that triggers a transaction
// (paper §3.3): "a predicate on packet fields that triggers the transaction
// whenever a packet matches the guard". Guards map straightforwardly to the
// match key of a match-action table; this implementation evaluates them in
// front of the compiled pipeline.
type Guard struct {
	expr ast.Expr
	src  string
}

// ParseGuard parses a guard predicate, e.g. "pkt.tcp_dst_port == 80".
// Guards may reference packet fields and constants; they cannot touch
// switch state (the match half of a match-action table is stateless).
func ParseGuard(src string) (*Guard, error) {
	e, err := parser.ParseExpr(src)
	if err != nil {
		return nil, fmt.Errorf("domino: invalid guard: %w", err)
	}
	var bad error
	ast.Walk(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			bad = fmt.Errorf("domino: guard reads %q; guards may only reference packet fields and constants", x.Name)
			return false
		case *ast.IndexExpr:
			bad = fmt.Errorf("domino: guard indexes state array %q; guards must be stateless", x.Name)
			return false
		case *ast.CallExpr:
			bad = fmt.Errorf("domino: guard calls %q; guards must be pure field predicates", x.Fun)
			return false
		}
		return true
	})
	if bad != nil {
		return nil, bad
	}
	return &Guard{expr: e, src: src}, nil
}

// String returns the guard's source form.
func (g *Guard) String() string { return g.src }

// Match evaluates the guard against a packet. Missing fields read as zero,
// like any unset header field.
func (g *Guard) Match(pkt Packet) bool {
	return evalGuard(g.expr, pkt) != 0
}

func evalGuard(e ast.Expr, pkt Packet) int32 {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value
	case *ast.FieldExpr:
		return pkt[x.Field]
	case *ast.UnaryExpr:
		v := evalGuard(x.X, pkt)
		r, _ := interp.EvalUnary(x.Op, v)
		return r
	case *ast.BinaryExpr:
		a := evalGuard(x.X, pkt)
		b := evalGuard(x.Y, pkt)
		r, _ := interp.EvalBinary(x.Op, a, b)
		return r
	case *ast.CondExpr:
		if evalGuard(x.Cond, pkt) != 0 {
			return evalGuard(x.Then, pkt)
		}
		return evalGuard(x.Else, pkt)
	}
	return 0
}

// Rule pairs a guard with a compiled transaction (paper §3.4's policy
// element). A nil guard matches every packet.
type Rule struct {
	Guard   *Guard
	Program *Program
}

// Policy is an ordered list of guard→transaction rules: the §3.4 policy
// language for disjoint guards. A packet is processed by the first rule
// whose guard matches (first-match disambiguates overlapping guards; the
// paper leaves richer composition semantics to future work, and so do we).
type Policy struct {
	rules    []Rule
	machines []*Machine
}

// NewPolicy instantiates one machine per rule.
func NewPolicy(rules []Rule) (*Policy, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("domino: policy needs at least one rule")
	}
	p := &Policy{rules: rules}
	for i, r := range rules {
		if r.Program == nil {
			return nil, fmt.Errorf("domino: rule %d has no program", i)
		}
		m, err := r.Program.NewMachine()
		if err != nil {
			return nil, err
		}
		p.machines = append(p.machines, m)
	}
	return p, nil
}

// Process runs pkt through the first matching rule's pipeline. It returns
// the processed packet and the rule index, or matched=false (packet passes
// through unmodified) when no guard matches.
func (p *Policy) Process(pkt Packet) (out Packet, rule int, matched bool, err error) {
	for i, r := range p.rules {
		if r.Guard == nil || r.Guard.Match(pkt) {
			out, err = p.machines[i].Process(pkt)
			return out, i, true, err
		}
	}
	return pkt, -1, false, nil
}

// Machine returns the machine instantiated for rule i (for state access).
func (p *Policy) Machine(i int) *Machine { return p.machines[i] }
