// Command dominoc is the Domino compiler driver: it compiles a packet
// transaction for a Banzai target and prints the atom pipeline, the
// normalized three-address code, generated P4, or the dependency graph.
//
// Usage:
//
//	dominoc -alg flowlets                 # compile a catalog algorithm
//	dominoc -file prog.domino -target Sub # compile a file for one target
//	dominoc -alg conga -p4                # emit P4_16
//	dominoc -alg flowlets -dot            # emit the Figure 9 graph
package main

import (
	"flag"
	"fmt"
	"os"

	"domino"
)

func main() {
	var (
		file    = flag.String("file", "", "Domino source file to compile")
		alg     = flag.String("alg", "", "compile a catalog algorithm by name (see -list)")
		target  = flag.String("target", "", "Banzai target (Write, ReadAddWrite, PRAW, IfElseRAW, Sub, Nested, Pairs); default: least expressive that accepts")
		emitP4  = flag.Bool("p4", false, "emit the generated P4_16 program")
		emitDot = flag.Bool("dot", false, "emit the dependency graph in Graphviz format")
		emitIR  = flag.Bool("ir", false, "emit the normalized three-address code")
		list    = flag.Bool("list", false, "list catalog algorithms and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range domino.Catalog() {
			maps := e.LeastAtom.String()
			if !e.Maps {
				maps = "does not map"
			}
			fmt.Printf("%-16s %-40s least atom: %s\n", e.Name, e.Title, maps)
		}
		return
	}

	src, err := loadSource(*file, *alg)
	if err != nil {
		fatal(err)
	}

	var prog *domino.Program
	if *target == "" {
		prog, err = domino.CompileLeast(src)
	} else {
		var tgt domino.Target
		tgt, err = domino.TargetFor(*target)
		if err == nil {
			prog, err = domino.Compile(src, tgt)
		}
	}
	if err != nil {
		fatal(err)
	}

	switch {
	case *emitP4:
		fmt.Print(prog.P4())
	case *emitDot:
		fmt.Print(prog.Dot())
	case *emitIR:
		fmt.Print(prog.ThreeAddressCode())
	default:
		fmt.Print(prog.Describe())
		fmt.Printf("Domino LOC: %d, generated P4 LOC: %d\n", prog.DominoLOC(), prog.P4LOC())
	}
}

func loadSource(file, alg string) (string, error) {
	switch {
	case file != "" && alg != "":
		return "", fmt.Errorf("use either -file or -alg, not both")
	case file != "":
		b, err := os.ReadFile(file)
		if err != nil {
			return "", err
		}
		return string(b), nil
	case alg != "":
		return domino.CatalogSource(alg)
	}
	return "", fmt.Errorf("nothing to compile: pass -file or -alg (or -list)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dominoc:", err)
	os.Exit(1)
}
