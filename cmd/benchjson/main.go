// Command benchjson converts `go test -bench` output into a JSON benchmark
// snapshot, so throughput numbers can be committed per PR and diffed by
// machines as well as humans.
//
// Usage:
//
//	go test . -run xxx -bench Throughput | go run ./cmd/benchjson -o BENCH.json
//	go run ./cmd/benchjson -delta BENCH_pr3.json BENCH_pr4.json
//
// In the default (pipe) mode, every input line is echoed to stdout, so
// piping through benchjson does not hide the benchmark progress; lines
// that are not benchmark results are passed through and otherwise
// ignored. When the same benchmark appears multiple times (go test
// -count=N), the snapshot keeps the best sample — highest pkts/s, or
// lowest ns/op — so one noisy-low run on a shared machine does not
// become the committed number. -delta compares two snapshots, printing the pkts/s ratio per
// benchmark (new/old; >1 is faster) plus ns/op and allocs/op movement.
// -maxloss N turns the delta into a regression gate: exit 1 if any
// benchmark present in both snapshots lost more than N% of its pkts/s
// (benchmarks without a pkts/s metric are compared on ns/op instead).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line: its name, iteration count, and every
// reported metric (ns/op, pkts/s, B/op, allocs/op, ...).
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "write the JSON snapshot to this file (default stdout)")
	delta := flag.Bool("delta", false, "compare two snapshots: benchjson -delta old.json new.json")
	maxLoss := flag.Float64("maxloss", -1,
		"with -delta: fail (exit 1) if any common benchmark regresses by more than this percent")
	flag.Parse()

	if *delta {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -delta needs exactly two snapshot files: old.json new.json")
			os.Exit(2)
		}
		regressed, err := printDelta(flag.Arg(0), flag.Arg(1), *maxLoss)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %g%%: %s\n",
				len(regressed), *maxLoss, strings.Join(regressed, ", "))
			os.Exit(1)
		}
		return
	}

	results := []result{} // non-nil: an empty run still emits a JSON array
	index := make(map[string]int)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		if i, dup := index[r.Name]; dup {
			if faster(r, results[i]) {
				results[i] = r
			}
			continue
		}
		index[r.Name] = len(results)
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   123456   1050 ns/op   0 B/op   0 allocs/op   7.1e6 pkts/s
//
// i.e. a name, an iteration count, then value/unit pairs.
func parseLine(line string) (result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return result{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	name := f[0]
	if s := lastDashField(name); s != "" {
		name = strings.TrimSuffix(name, "-"+s)
	}
	r := result{
		Name:       name,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(f)-2)/2),
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}

// faster reports whether sample a beats sample b of the same benchmark:
// higher pkts/s when both report it, lower ns/op otherwise.
func faster(a, b result) bool {
	if ap, bp := a.Metrics["pkts/s"], b.Metrics["pkts/s"]; ap > 0 && bp > 0 {
		return ap > bp
	}
	return a.Metrics["ns/op"] < b.Metrics["ns/op"]
}

// printDelta loads two snapshots and prints per-benchmark movement. The
// pkts/s ratio (new/old) is the headline; benchmarks present in only one
// snapshot are listed so added or removed cases are visible. With
// maxLoss >= 0 it also returns the benchmarks whose throughput dropped
// by more than that percentage — pkts/s when both snapshots report it,
// 1/(ns/op) otherwise, so every benchmark is gated on something.
func printDelta(oldPath, newPath string, maxLoss float64) ([]string, error) {
	load := func(path string) (map[string]result, []string, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		var rs []result
		if err := json.Unmarshal(data, &rs); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		m := make(map[string]result, len(rs))
		var names []string
		for _, r := range rs {
			if _, dup := m[r.Name]; !dup {
				names = append(names, r.Name)
			}
			m[r.Name] = r
		}
		return m, names, nil
	}
	oldR, _, err := load(oldPath)
	if err != nil {
		return nil, err
	}
	newR, newNames, err := load(newPath)
	if err != nil {
		return nil, err
	}

	var regressed []string
	fmt.Printf("%-55s %12s %12s %8s %9s\n", "benchmark", "old pkts/s", "new pkts/s", "ratio", "ns/op")
	for _, name := range newNames {
		n := newR[name]
		o, ok := oldR[name]
		if !ok {
			fmt.Printf("%-55s %12s %12.3g %8s %9.4g  (new)\n", name, "-", n.Metrics["pkts/s"], "-", n.Metrics["ns/op"])
			continue
		}
		line := fmt.Sprintf("%-55s %12.4g %12.4g", name, o.Metrics["pkts/s"], n.Metrics["pkts/s"])
		ratio := 0.0
		if op, np := o.Metrics["pkts/s"], n.Metrics["pkts/s"]; op > 0 && np > 0 {
			ratio = np / op
			line += fmt.Sprintf(" %7.2fx", ratio)
		} else {
			if ons, nns := o.Metrics["ns/op"], n.Metrics["ns/op"]; ons > 0 && nns > 0 {
				ratio = ons / nns // faster = bigger, same sense as pkts/s
			}
			line += fmt.Sprintf(" %8s", "-")
		}
		line += fmt.Sprintf(" %9.4g", n.Metrics["ns/op"])
		if oa, na := o.Metrics["allocs/op"], n.Metrics["allocs/op"]; na != oa {
			line += fmt.Sprintf("  allocs %g->%g", oa, na)
		}
		if maxLoss >= 0 && ratio > 0 && ratio < 1-maxLoss/100 {
			regressed = append(regressed, name)
			line += "  REGRESSED"
		}
		fmt.Println(line)
	}
	var removed []string
	for name := range oldR {
		if _, ok := newR[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Printf("%-55s  (removed)\n", name)
	}
	return regressed, nil
}

// lastDashField returns the trailing -N GOMAXPROCS suffix (without the
// dash) if present, so "Benchmark/x-8" normalizes to "Benchmark/x".
func lastDashField(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	suffix := name[i+1:]
	if _, err := strconv.Atoi(suffix); err != nil {
		return ""
	}
	return suffix
}
