// Command benchjson converts `go test -bench` output into a JSON benchmark
// snapshot, so throughput numbers can be committed per PR and diffed by
// machines as well as humans.
//
// Usage:
//
//	go test . -run xxx -bench Throughput | go run ./cmd/benchjson -o BENCH.json
//
// Every input line is echoed to stdout, so piping through benchjson does
// not hide the benchmark progress. Lines that are not benchmark results
// are passed through and otherwise ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line: its name, iteration count, and every
// reported metric (ns/op, pkts/s, B/op, allocs/op, ...).
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "write the JSON snapshot to this file (default stdout)")
	flag.Parse()

	results := []result{} // non-nil: an empty run still emits a JSON array
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		r, ok := parseLine(line)
		if ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   123456   1050 ns/op   0 B/op   0 allocs/op   7.1e6 pkts/s
//
// i.e. a name, an iteration count, then value/unit pairs.
func parseLine(line string) (result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return result{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	name := f[0]
	if s := lastDashField(name); s != "" {
		name = strings.TrimSuffix(name, "-"+s)
	}
	r := result{
		Name:       name,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(f)-2)/2),
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}

// lastDashField returns the trailing -N GOMAXPROCS suffix (without the
// dash) if present, so "Benchmark/x-8" normalizes to "Benchmark/x".
func lastDashField(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	suffix := name[i+1:]
	if _, err := strconv.Atoi(suffix); err != nil {
		return ""
	}
	return suffix
}
