// Command banzai compiles a Domino program and runs a synthetic workload
// through the resulting atom pipeline on the cycle-accurate Banzai machine,
// cross-checking every packet against the sequential reference interpreter.
//
// Usage:
//
//	banzai -alg flowlets -n 10000
//	banzai -alg heavy_hitters -n 100000 -target Pairs
package main

import (
	"flag"
	"fmt"
	"os"

	"domino"
	"domino/internal/interp"
	"domino/internal/workload"
)

func main() {
	var (
		alg    = flag.String("alg", "flowlets", "catalog algorithm to run")
		n      = flag.Int("n", 10000, "number of packets")
		target = flag.String("target", "", "Banzai target (default: least expressive)")
		seed   = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	src, err := domino.CatalogSource(*alg)
	if err != nil {
		fatal(err)
	}
	var prog *domino.Program
	if *target == "" {
		prog, err = domino.CompileLeast(src)
	} else {
		tgt, terr := domino.TargetFor(*target)
		if terr != nil {
			fatal(terr)
		}
		prog, err = domino.Compile(src, tgt)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: target %s, %d stages, max %d atoms/stage\n",
		*alg, prog.Target().Name, prog.NumStages(), prog.MaxAtomsPerStage())

	m, err := prog.NewMachine()
	if err != nil {
		fatal(err)
	}
	ref, err := domino.NewInterpreter(src)
	if err != nil {
		fatal(err)
	}

	trace := traceFor(*alg, *seed, *n)
	mismatches := 0
	var emitted int
	for _, pkt := range trace {
		want := pkt.Clone()
		if err := ref.Run(want); err != nil {
			fatal(err)
		}
		if out, ok := m.Tick(pkt); ok {
			emitted++
			_ = out
		}
	}
	for range m.Drain() {
		emitted++
	}
	if emitted != len(trace) {
		fatal(fmt.Errorf("pipeline emitted %d of %d packets", emitted, len(trace)))
	}
	if !ref.State().Equal(m.State()) {
		fatal(fmt.Errorf("pipeline state diverged from the sequential reference"))
	}
	fmt.Printf("ran %d packets in %d cycles (one packet per clock + drain); %d mismatches\n",
		len(trace), m.Cycles(), mismatches)
	fmt.Println("pipeline state ≡ serial transaction execution ✓")
}

// traceFor picks a workload matching the algorithm's packet fields.
func traceFor(alg string, seed int64, n int) []interp.Packet {
	switch alg {
	case "flowlets":
		return workload.FlowletTrace(seed, 100, n, 10, 50)
	case "bloom_filter", "heavy_hitters":
		tr, _ := workload.HeavyHitterTrace(seed, 1000, n, 1.2)
		return tr
	case "rcp":
		return workload.RTTTrace(seed, n, 15, 30)
	case "dns_ttl":
		tr, _ := workload.DNSTrace(seed, 512, n, 0.1)
		return tr
	case "conga":
		return workload.CongaTrace(seed, 16, 64, n)
	case "hull", "avq":
		return workload.AQMTrace(seed, n)
	case "stfq_wfq":
		return workload.STFQTrace(seed, 64, n)
	default: // sampled_netflow and anything field-free
		out := make([]interp.Packet, n)
		for i := range out {
			out[i] = interp.Packet{}
		}
		return out
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "banzai:", err)
	os.Exit(1)
}
