package main

// The -fct experiment: flow completion times on a k-ary fat tree under a
// heavy-tailed flow-arrival workload — the datacenter evaluation shape
// the load-balancing papers (CONGA, and the transactions this repo
// compiles) report against. Flows arrive as a Poisson process and carry
// bounded-Pareto-sized bursts, so the trace is mostly idle time between
// bursts; the event-driven simulation core (PR 10) skips the idle ticks,
// and the report closes by measuring that: the same fabric and trace
// replayed once per-tick and once event-driven, equal simulated ticks,
// wall-clock side by side.

import (
	"fmt"
	"time"

	"domino/internal/netsim"
)

func fctExperiment(k int, seed int64) {
	podHosts := k * k * k / 4
	fmt.Printf("== Fat-tree FCT (k=%d: %d hosts, %d edge + %d agg + %d core switches) ==\n",
		k, podHosts, k*k/2, k*k/2, k*k/4)
	fmt.Println("   heavy-tailed workload: Poisson flow arrivals, bounded-Pareto sizes (α=1.1);")
	fmt.Println("   mice are flows <10 pkts, elephants ≥100 pkts; FCTs in simulated ticks")
	fmt.Println()

	routings := []string{"ecmp_route", "flowlet_route"}
	// conga_route's leaf table is capped at 64 leaves; a k-ary fat tree
	// has k²/2 edge switches, so CONGA runs up to k=8.
	if k*k/2 <= 64 {
		routings = append(routings, "conga_route")
	} else {
		fmt.Printf("   (conga_route skipped: %d edges exceed its 64-leaf table)\n\n", k*k/2)
	}

	cfg := func(routing string) netsim.FatTreeExperimentConfig {
		return netsim.FatTreeExperimentConfig{
			Routing: routing, K: k, Seed: seed,
			MeanGapTicks: 96, MaxPkts: 256,
		}
	}

	fmt.Printf("%-16s %8s %8s %8s %8s %9s %12s %10s %7s\n",
		"routing", "fct p50", "fct p95", "fct p99", "fct max", "mice p99", "elephant p99", "delivered", "drops")
	for _, routing := range routings {
		res, err := netsim.RunFatTreeFCT(cfg(routing))
		if err != nil {
			fatal(err)
		}
		if res.Completed != res.Flows {
			fatal(fmt.Errorf("%s: only %d of %d flows completed", routing, res.Completed, res.Flows))
		}
		fmt.Printf("%-16s %8d %8d %8d %8d %9d %12d %10d %7d\n",
			res.Routing, res.FCTP50, res.FCTP95, res.FCTP99, res.FCTMax,
			res.MiceP99, res.ElephantP99, res.Delivered, res.Dropped)
	}
	fmt.Println()

	// The event-core payoff: identical fabric + trace, driven per-tick
	// and event-driven to the same final tick. Both runs carry the full
	// conservation oracle; only the driver differs.
	fmt.Println("   event core vs per-tick polling (same fabric, same trace, equal simulated ticks):")
	c := cfg(routings[0])

	build := func() *netsim.Network {
		ft, _, err := c.Build()
		if err != nil {
			fatal(err)
		}
		if err := ft.Net.SetTrace(c.Trace(), ft.Hosts); err != nil {
			fatal(err)
		}
		return ft.Net
	}

	evN := build()
	start := time.Now()
	if err := evN.Drain(1 << 22); err != nil {
		fatal(err)
	}
	evWall := time.Since(start)
	ticks := evN.Now()

	polledN := build()
	start = time.Now()
	for polledN.Now() < ticks {
		if err := polledN.Step(); err != nil {
			fatal(err)
		}
	}
	polledWall := time.Since(start)

	for _, n := range []*netsim.Network{evN, polledN} {
		if err := n.CheckConservation(); err != nil {
			fatal(err)
		}
	}
	if et, pt := evN.Totals(), polledN.Totals(); et != pt {
		fatal(fmt.Errorf("event and polled cores disagree:\n  event  %+v\n  polled %+v", et, pt))
	}

	speedup := float64(polledWall) / float64(evWall)
	fmt.Printf("   %-12s %12s wall for %d ticks (%d steps processed, %.1f%% skipped)\n",
		"event:", evWall.Round(time.Microsecond), ticks, evN.Steps(),
		100*float64(ticks-evN.Steps())/float64(ticks))
	fmt.Printf("   %-12s %12s wall for %d ticks (every tick stepped)\n",
		"polled:", polledWall.Round(time.Microsecond), ticks)
	fmt.Printf("   speedup: %.1f× (identical totals, conservation holds on both)\n\n", speedup)
}
