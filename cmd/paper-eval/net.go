package main

// The -net experiment: the network-level evaluation the paper's routing
// case studies (ECMP baselines, flowlet switching, CONGA) are judged by.
// A leaf-spine fabric of compiled-pipeline switches replays a cross-leaf
// permutation traffic matrix once per routing policy; the table compares
// core load balance and flow completion times. Routing decisions are
// ordinary Domino transactions (internal/algorithms/routing.go) running
// in each leaf's ingress pipeline — the simulator only honors the
// out_port field they write.

import (
	"fmt"

	"domino/internal/netsim"
)

func netExperiment() {
	fmt.Println("== Leaf-spine load balance (4 leaves × 2 spines, cross-leaf permutation matrix) ==")
	fmt.Println("   routing runs as a Domino transaction in each leaf's ingress pipeline;")
	fmt.Println("   imbalance is (max-min)/mean over core-link bytes, lower is better")
	fmt.Println()
	fmt.Printf("%-16s %10s %12s %10s %10s %10s %9s %7s\n",
		"routing", "imbalance", "max core uti", "fct mean", "fct p95", "fct max", "delivered", "drops")
	for _, routing := range []string{"ecmp_route", "flowlet_route", "conga_route"} {
		res, err := netsim.RunLeafSpine(netsim.ExperimentConfig{Routing: routing, Seed: 1})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-16s %10.3f %12.3f %10.1f %10d %10d %9d %7d\n",
			res.Routing, res.Imbalance, res.MaxCoreUtil,
			res.FCTMean, res.FCTP95, res.FCTMax, res.Delivered, res.Dropped)
	}
	fmt.Println()
	fmt.Println("   ECMP pins each flow to one hashed path, so colliding elephants stay")
	fmt.Println("   collided; flowlet switching re-picks at burst boundaries; CONGA steers")
	fmt.Println("   by reflected path-utilization feedback (both as packet transactions).")
}
