package main

// The -soak experiment: a chaos soak over the gray-failure fault model.
// N seeded random schedules — link downs, degradations, corruption,
// reorder, duplication, flap storms, switch stalls, crashes and
// restarts (clean and state-scrambling) — rage over small leaf-spine
// fabrics rotating through the routing catalog, half the runs with the
// reliable host transport enabled. Every tick of every run checks the
// four conservation identities byte-exactly plus the header-pool-leak
// oracle; every run must drain within a bound once healed; sampled runs
// are executed twice and must fold to a byte-identical delivery digest.
// Any violation aborts with the run index and seed, so the exact
// failure replays deterministically.

import (
	"fmt"
	"os"

	"domino/internal/netsim"
)

func soakExperiment(runs int, seed int64) {
	fmt.Printf("== Chaos soak: %d seeded random fault schedules ==\n", runs)
	fmt.Println("   fabrics: 2- and 3-leaf × 2-spine; routing rotates ecmp/flowlet/conga;")
	fmt.Println("   every second run uses the reliable host transport. Oracles per tick:")
	fmt.Println("   conservation ×4 (byte-exact), live headers == queued + in-flight;")
	fmt.Println("   per run: bounded drain, zero leaks, transport resolution, and a")
	fmt.Println("   sampled byte-identical replay.")
	cfg := netsim.SoakConfig{
		Runs: runs,
		Seed: seed,
		Progress: func(done, total int) {
			if done%100 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "  soak: %d/%d\r", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		},
	}
	st, err := netsim.RunSoak(cfg)
	if err != nil {
		fatal(err)
	}
	if err := st.Coverage(); err != nil {
		fatal(err)
	}
	fmt.Printf("\n%-28s %12d\n", "schedules survived", st.Runs)
	fmt.Printf("%-28s %12d raw, %d reliable\n", "transport split", st.RawRuns, st.ReliableRuns)
	fmt.Printf("%-28s %12d (all byte-identical)\n", "replays compared", st.Replays)
	fmt.Println("\nfault events scheduled, per kind:")
	for _, k := range netsim.FaultKinds() {
		fmt.Printf("  %-24s %10d\n", k, st.FaultEvents[k])
	}
	fmt.Println("\naggregate traffic:")
	fmt.Printf("  %-24s %10d\n", "injected pkts", st.InjectedPkts)
	fmt.Printf("  %-24s %10d\n", "delivered pkts", st.DeliveredPkts)
	fmt.Printf("  %-24s %10d\n", "wire duplicates", st.DupInjectedPkts)
	fmt.Printf("  %-24s %10d\n", "blackholed", st.BlackholedPkts)
	fmt.Printf("  %-24s %10d\n", "corrupt-dropped", st.CorruptDroppedPkts)
	fmt.Printf("  %-24s %10d (%d by fast retransmit)\n", "retransmissions", st.RetransPkts, st.FastRetransPkts)
	fmt.Printf("  %-24s %10d (loud, never silent)\n", "given up", st.GivenUpPkts)
	fmt.Println("\nevery run held all four conservation identities on every tick, leaked")
	fmt.Println("no headers, drained within its bound, and replayed byte-identically")
	fmt.Println("where sampled — the gray-failure model composes.")
}
