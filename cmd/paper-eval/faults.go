package main

// The -faults experiment: graceful degradation under a seeded core-link
// failure. One leaf uplink goes down mid-run and comes back later; the
// table shows each routing policy's delivered rate before, during, and
// after the outage. flowlet_route and conga_route consult the per-switch
// port_up liveness array (poked by the fault harness at the up/down
// boundaries) and detour around the dead uplink; ecmp_route never reads
// it, so its hashed share of traffic stalls behind the frozen port for
// the whole outage.

import (
	"fmt"

	"domino/internal/netsim"
)

func faultsExperiment(seed int64) {
	cfg := netsim.FaultExperimentConfig{}
	cfg.Seed = seed
	fmt.Println("== Routing under a core-link failure (leaf-0 uplink to spine-0 down, then restored) ==")
	fmt.Println("   rate is data packets sunk per tick; recovery = during/before;")
	fmt.Println("   imbalance is (max-min)/mean over core-link bytes moved in the window")
	fmt.Println()
	fmt.Printf("%-16s %8s %8s %8s %9s %9s %11s %11s %7s\n",
		"routing", "before", "during", "after", "recovery", "post-rec", "imb during", "blackholed", "drops")
	for _, routing := range []string{"ecmp_route", "flowlet_route", "conga_route"} {
		cfg.Routing = routing
		res, err := netsim.RunLeafSpineFaults(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-16s %8.3f %8.3f %8.3f %9.3f %9.3f %11.3f %11d %7d\n",
			res.Routing, res.Before.Rate, res.During.Rate, res.After.Rate,
			res.Recovery, res.PostRecovery, res.During.CoreImbalance,
			res.Totals.BlackholedPkts, res.Totals.DroppedPkts)
	}
	fmt.Println()
	fmt.Println("   packets in flight on the failing uplink are blackholed at the failure")
	fmt.Println("   instant (conservation counts them; delay-1 links make that window one")
	fmt.Println("   tick, often empty); port_up-aware transactions reroute the rest, while")
	fmt.Println("   ECMP stays blind and its hashed share waits out the outage.")
}
