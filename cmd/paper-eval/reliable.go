package main

// The -reliable experiment: end-to-end reliable transport under the
// fault schedule of -faults plus a window of per-mille link corruption.
// Each routing policy runs the same trace twice — raw (PR 6 hosts:
// inject once, lost is lost) and reliable (PR 7 hosts: sequence
// numbers, retransmission with backoff, sink-side dedup, ECN-paced
// AIMD) — so the delivered-exactly-once fraction, the retransmit
// overhead and the post-outage recovery time isolate what host
// reliability buys on top of each routing policy.

import (
	"fmt"

	"domino/internal/netsim"
)

func reliableExperiment(seed int64) {
	cfg := netsim.ReliableExperimentConfig{}
	cfg.Seed = seed
	cfg.Transport.Seed = seed
	fmt.Println("== Reliable transport under a core outage + 5‰ link corruption ==")
	fmt.Println("   delivered is the exactly-once fraction of offered trace packets;")
	fmt.Println("   overhead = retransmitted copies / offered; marks = delivered data")
	fmt.Println("   packets carrying an ECN mark (raw mode runs without the ecn_mark")
	fmt.Println("   block, so any raw marks are corruption-scrambled bits the checksum-")
	fmt.Println("   less hosts could not reject); recovery = ticks after the fabric")
	fmt.Println("   heals until goodput sustains 90% of its pre-fail rate")
	fmt.Println()
	fmt.Printf("%-16s %-9s %10s %9s %7s %8s %7s %9s %9s %9s\n",
		"routing", "mode", "delivered", "overhead", "dups", "givenup", "marks", "ratecuts", "recovery", "blackhole")
	recovery := func(t int64) string {
		if t < 0 {
			return "never"
		}
		return fmt.Sprintf("%d", t)
	}
	for _, routing := range []string{"ecmp_route", "flowlet_route", "conga_route"} {
		cfg.Routing = routing
		res, err := netsim.RunLeafSpineReliable(cfg)
		if err != nil {
			fatal(err)
		}
		for _, st := range []*netsim.ReliableRunStats{&res.Raw, &res.Reliable} {
			fmt.Printf("%-16s %-9s %9.4f%% %9.4f %7d %8d %7d %9d %9s %9d\n",
				res.Routing, st.Mode, 100*st.DeliveredFrac, st.RetransOverhead,
				st.DupDroppedPkts, st.GivenUpPkts, st.Totals.EcnMarkedPkts, st.RateCuts,
				recovery(st.RecoveryTicks), st.BlackholedPkts)
		}
	}
	fmt.Println()
	fmt.Println("   raw mode loses whatever the outage blackholes and the corruptor")
	fmt.Println("   scrambles — and, having no end-to-end checksum, it even counts a")
	fmt.Println("   scrambled packet misdelivered to the wrong host as a success. The")
	fmt.Println("   reliable hosts validate, dedup and retransmit (the ECN mark is a")
	fmt.Println("   packet transaction in the switch programs, not simulator code) and")
	fmt.Println("   deliver every packet exactly once — or give up loudly, never silently.")
}
