package main

// The -reliable experiment: end-to-end reliable transport under the
// gray-failure schedule — the -faults core outage plus windows of
// per-mille corruption, bounded in-flight reordering and per-mille
// duplication on a second uplink, a down/up flap storm on a third, and
// a mid-outage leaf power-cycle that wipes its routing soft state. Each
// routing policy runs the same trace three times — raw (PR 6 hosts:
// inject once, lost is lost), rel-rto (PR 7 hosts: retransmit on RTO
// expiry only), and reliable (PR 9: plus duplicate-ACK fast retransmit)
// — so the delivered-exactly-once fraction, the retransmit overhead and
// the mean ack latency isolate what each layer of host reliability buys.

import (
	"fmt"

	"domino/internal/netsim"
)

func reliableExperiment(seed int64) {
	cfg := netsim.ReliableExperimentConfig{}
	cfg.Seed = seed
	cfg.Transport.Seed = seed
	fmt.Println("== Reliable transport under gray failure: outage + corruption +")
	fmt.Println("   reorder + duplication + flap storm + mid-outage switch restart ==")
	fmt.Println("   delivered is the exactly-once fraction of offered trace packets;")
	fmt.Println("   overhead = retransmitted copies / offered; fastrx = the share of")
	fmt.Println("   those triggered by duplicate-ACK evidence instead of an RTO expiry;")
	fmt.Println("   ack = mean ticks from a packet's first send to its acknowledgment")
	fmt.Println("   (retransmitted packets included — the loss-recovery latency);")
	fmt.Println("   recovery = ticks after the fabric heals until goodput sustains 90%")
	fmt.Println("   of its pre-fail rate")
	fmt.Println()
	fmt.Printf("%-16s %-9s %10s %9s %7s %7s %8s %8s %9s %9s\n",
		"routing", "mode", "delivered", "overhead", "fastrx", "dups", "givenup", "ack", "recovery", "blackhole")
	recovery := func(t int64) string {
		if t < 0 {
			return "never"
		}
		return fmt.Sprintf("%d", t)
	}
	for _, routing := range []string{"ecmp_route", "flowlet_route", "conga_route"} {
		cfg.Routing = routing
		res, err := netsim.RunLeafSpineReliable(cfg)
		if err != nil {
			fatal(err)
		}
		for _, st := range []*netsim.ReliableRunStats{&res.Raw, &res.RelRTO, &res.Reliable} {
			fmt.Printf("%-16s %-9s %9.4f%% %9.4f %7d %7d %8d %8.1f %9s %9d\n",
				res.Routing, st.Mode, 100*st.DeliveredFrac, st.RetransOverhead,
				st.FastRetransPkts, st.DupDroppedPkts, st.GivenUpPkts, st.MeanAckTicks,
				recovery(st.RecoveryTicks), st.BlackholedPkts)
		}
	}
	fmt.Println()
	fmt.Println("   raw mode loses whatever the faults destroy — and, having no")
	fmt.Println("   end-to-end checksum or dedup, it even counts a wire duplicate or a")
	fmt.Println("   misdelivered scrambled packet as a success. The reliable hosts")
	fmt.Println("   validate, dedup and retransmit (the ECN mark is a packet transaction")
	fmt.Println("   in the switch programs, not simulator code) and deliver every packet")
	fmt.Println("   exactly once — or give up loudly, never silently. rel-rto waits out")
	fmt.Println("   the timeout on every loss; reliable resends on k duplicate ACKs and")
	fmt.Println("   cuts the mean ack latency.")
}
