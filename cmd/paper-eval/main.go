// Command paper-eval regenerates every table and figure of the paper's
// evaluation (§5), printing the measured values side by side with the
// published ones.
//
// Usage:
//
//	paper-eval                 # everything
//	paper-eval -table 4        # one table (3, 4, 5, 6, compile-time, resources)
//	paper-eval -figure 3       # one figure (3, passes, 9)
//	paper-eval -throughput     # simulator data-path throughput comparison
//	paper-eval -sched          # PIFO scheduling: weighted shares + port stats
//	paper-eval -opt            # build-time optimizer report per algorithm
//	paper-eval -net            # leaf-spine ECMP vs flowlet vs CONGA load balance
//	paper-eval -faults         # routing under a seeded core-link failure
//	paper-eval -reliable       # raw vs reliable transport under outage + corruption
//	paper-eval -telemetry      # in-band telemetry + metrics core on the faulted run
//	paper-eval -soak 1000      # chaos soak: N seeded random gray-failure schedules
//	paper-eval -fct            # fat-tree FCT percentiles + event-core speedup
//	paper-eval -k 8            # fat-tree arity for -fct (even, ≥2)
//	paper-eval -seed 7         # reseed the -faults / -reliable / -telemetry / -soak scenarios
//	paper-eval -pprof cpu.out  # write a CPU profile of the requested reports
//
// Unknown flags or values exit non-zero with a message on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"domino/internal/algorithms"
	"domino/internal/ast"
	"domino/internal/atoms"
	"domino/internal/banzai"
	"domino/internal/codegen"
	"domino/internal/hw"
	"domino/internal/interp"
	"domino/internal/p4gen"
	"domino/internal/parser"
	"domino/internal/passes"
	"domino/internal/pifo"
	"domino/internal/pvsm"
	"domino/internal/sema"
	"domino/internal/switchsim"
	"domino/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paper-eval:", err)
		os.Exit(1)
	}
}

// run parses args and dispatches the requested reports. Flag and value
// errors come back as errors (so tests can exercise them and main can
// exit non-zero); failures deep inside a report still exit via fatal.
func run(args []string) error {
	fs := flag.NewFlagSet("paper-eval", flag.ContinueOnError)
	table := fs.String("table", "", "table to regenerate: 3, 4, 5, 6, compile-time, resources")
	figure := fs.String("figure", "", "figure to regenerate: 3, passes, 9")
	tput := fs.Bool("throughput", false, "measure simulator data-path throughput (map vs header vs sharded)")
	schedFlag := fs.Bool("sched", false, "run the PIFO egress schedulers over the multi-tenant trace")
	optFlag := fs.Bool("opt", false, "report what the build-time optimizer does to each algorithm")
	netFlag := fs.Bool("net", false, "run the leaf-spine routing experiment (ECMP vs flowlet vs CONGA)")
	faultsFlag := fs.Bool("faults", false, "run the routing experiment under a seeded core-link failure")
	reliableFlag := fs.Bool("reliable", false, "run raw vs reliable transport under outage + corruption")
	telemetryFlag := fs.Bool("telemetry", false, "run the faulted scenario with in-band telemetry + metrics on")
	soakRuns := fs.Int("soak", 0, "chaos soak: run this many seeded random gray-failure schedules")
	fctFlag := fs.Bool("fct", false, "run the fat-tree FCT experiment (heavy-tailed flows, event core)")
	kArity := fs.Int("k", 8, "fat-tree arity for -fct (even, >= 2)")
	seed := fs.Int64("seed", 1, "seed for the -faults, -reliable, -telemetry and -soak scenarios")
	pprofFile := fs.String("pprof", "", "write a CPU profile of the requested reports to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *seed <= 0 {
		return fmt.Errorf("seed must be positive, got %d", *seed)
	}
	if *soakRuns < 0 {
		return fmt.Errorf("soak run count must be positive, got %d", *soakRuns)
	}
	if *kArity < 2 || *kArity%2 != 0 {
		return fmt.Errorf("fat-tree arity must be even and >= 2, got %d", *kArity)
	}
	if *pprofFile != "" {
		f, err := os.Create(*pprofFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	more := func() bool {
		return *table != "" || *figure != "" || *schedFlag || *tput || *optFlag
	}
	if *fctFlag {
		fctExperiment(*kArity, *seed)
		if !more() && !*netFlag && !*faultsFlag && !*reliableFlag && !*telemetryFlag && *soakRuns == 0 {
			return nil
		}
	}
	if *soakRuns > 0 {
		soakExperiment(*soakRuns, *seed)
		if !more() && !*netFlag && !*faultsFlag && !*reliableFlag && !*telemetryFlag {
			return nil
		}
	}
	if *telemetryFlag {
		telemetryExperiment(*seed)
		if !more() && !*netFlag && !*faultsFlag && !*reliableFlag {
			return nil
		}
	}
	if *reliableFlag {
		reliableExperiment(*seed)
		if !more() && !*netFlag && !*faultsFlag {
			return nil
		}
	}
	if *faultsFlag {
		faultsExperiment(*seed)
		if !more() && !*netFlag {
			return nil
		}
	}
	if *netFlag {
		netExperiment()
		if !more() {
			return nil
		}
	}

	if *tput {
		throughput()
		optReport() // the optimizer's effect belongs next to the throughput it buys
		if *table == "" && *figure == "" && !*schedFlag {
			return nil
		}
	} else if *optFlag {
		optReport()
		if *table == "" && *figure == "" && !*schedFlag {
			return nil
		}
	}
	if *schedFlag {
		sched()
		if *table == "" && *figure == "" {
			return nil
		}
	}
	if *table == "" && *figure == "" {
		table3()
		table4()
		table5()
		table6()
		compileTime()
		resources()
		figure3()
		return nil
	}
	switch *table {
	case "3":
		table3()
	case "4":
		table4()
	case "5":
		table5()
	case "6":
		table6()
	case "compile-time":
		compileTime()
	case "resources":
		resources()
	case "":
	default:
		return fmt.Errorf("unknown table %q (want 3, 4, 5, 6, compile-time, resources)", *table)
	}
	switch *figure {
	case "3":
		figure3()
	case "passes":
		figurePasses()
	case "9":
		figure9()
	case "":
	default:
		return fmt.Errorf("unknown figure %q (want 3, passes, 9)", *figure)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper-eval:", err)
	os.Exit(1)
}

// build compiles one algorithm down to IR.
func build(a algorithms.Algorithm) (*sema.Info, *passes.NormResult) {
	prog, err := parser.Parse(a.Source)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", a.Name, err))
	}
	info, err := sema.Check(prog)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", a.Name, err))
	}
	norm, err := passes.Normalize(info)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", a.Name, err))
	}
	return info, norm
}

func table3() {
	fmt.Println("== Table 3: atom areas in a 32 nm standard-cell library (1 GHz) ==")
	fmt.Printf("%-14s %14s %14s %8s\n", "atom", "area µm² (ours)", "paper", "timing@1GHz")
	kinds := append([]atoms.Kind{atoms.Stateless}, atoms.StatefulHierarchy...)
	for _, k := range kinds {
		c := hw.CircuitFor(k)
		ok := "meets"
		if !c.MeetsTiming(1.0) {
			ok = "FAILS"
		}
		fmt.Printf("%-14s %14.0f %14.0f %8s\n", k, c.Area(), hw.PaperArea[k], ok)
	}
	fmt.Println()
}

func table4() {
	fmt.Println("== Table 4: data-plane algorithms ==")
	fmt.Printf("%-16s %-12s %-12s %9s %9s %11s %11s %8s\n",
		"algorithm", "least atom", "(paper)", "stages", "(paper)", "atoms/stage", "DominoLOC", "P4LOC")
	for _, a := range algorithms.All() {
		info, norm := build(a)
		dominoLOC := ast.CountLOC(a.Source)
		if !a.Maps {
			pl, err := pvsm.Build(norm.IR)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-16s %-12s %-12s %9d %9d %11d %11d %8s\n",
				a.Name, "none", "none", pl.NumStages(), a.PaperStages,
				pl.MaxAtomsPerStage(), dominoLOC, "-")
			continue
		}
		p, ok, err := codegen.LeastTarget(info, norm.IR)
		if !ok {
			fatal(fmt.Errorf("%s: %w", a.Name, err))
		}
		fmt.Printf("%-16s %-12s %-12s %9d %9d %11d %11d %8d\n",
			a.Name, p.Target.StatefulAtom, a.LeastAtom,
			p.NumStages(), a.PaperStages, p.MaxAtomsPerStage(), dominoLOC, p4gen.LOC(p))
	}
	fmt.Println("(paper LOC columns: Domino 18–57, generated P4 70–271; ours measured above)")
	fmt.Println()
}

func table5() {
	fmt.Println("== Table 5: programmability vs. performance ==")
	counts := map[atoms.Kind]int{}
	for _, a := range algorithms.All() {
		if !a.Maps {
			continue
		}
		for _, k := range atoms.StatefulHierarchy {
			if k.Contains(a.LeastAtom) {
				counts[k]++
			}
		}
	}
	fmt.Printf("%-14s %12s %8s %15s %12s %8s\n",
		"atom", "delay ps", "(paper)", "#algorithms", "rate Gpps", "(paper)")
	paperRate := map[atoms.Kind]float64{
		atoms.Write: 5.68, atoms.ReadAddWrite: 3.16, atoms.PRAW: 2.54,
		atoms.IfElseRAW: 2.55, atoms.Sub: 2.44, atoms.Nested: 1.72, atoms.Pairs: 1.64,
	}
	for _, k := range atoms.StatefulHierarchy {
		c := hw.CircuitFor(k)
		fmt.Printf("%-14s %12.0f %8.0f %15d %12.2f %8.2f\n",
			k, c.MinDelay(), hw.PaperDelay[k], counts[k], c.MaxLineRateGpps(), paperRate[k])
	}
	fmt.Println()
}

func table6() {
	fmt.Println("== Table 6: circuits and minimum delays ==")
	for _, k := range []atoms.Kind{atoms.Write, atoms.ReadAddWrite, atoms.PRAW} {
		fmt.Print(hw.CircuitFor(k).Diagram())
		fmt.Printf("  paper min delay: %.0f ps\n\n", hw.PaperDelay[k])
	}
}

func compileTime() {
	fmt.Println("== §5.3: compilation time ==")
	fmt.Printf("%-16s %-12s %12s\n", "algorithm", "target", "compile time")
	for _, a := range algorithms.All() {
		info, norm := build(a)
		start := time.Now()
		p, ok, _ := codegen.LeastTarget(info, norm.IR)
		dt := time.Since(start)
		if ok {
			fmt.Printf("%-16s %-12s %12s\n", a.Name, p.Target.StatefulAtom, dt.Round(time.Microsecond))
		} else {
			fmt.Printf("%-16s %-12s %12s (rejected on all 7 targets)\n", a.Name, "none", dt.Round(time.Microsecond))
		}
	}
	fmt.Println("(paper worst case: 10 s for CoDel's rejection; our structural search replaces")
	fmt.Println(" SKETCH's CEGIS loop, so rejections are near-instant — see EXPERIMENTS.md)")
	fmt.Println()
}

func resources() {
	fmt.Println("== §5.2: resource provisioning (Pairs target) ==")
	fmt.Print(hw.Provision(atoms.Pairs))
	fmt.Println()
}

func figure3() {
	fmt.Println("== Figure 3b: flowlet switching compiled to a Banzai pipeline ==")
	a, _ := algorithms.ByName("flowlets")
	info, norm := build(a)
	p, ok, err := codegen.LeastTarget(info, norm.IR)
	if !ok {
		fatal(err)
	}
	fmt.Print(p.Describe())
	fmt.Println()
}

func figurePasses() {
	fmt.Println("== Figures 5–8: compiler passes on flowlet switching ==")
	a, _ := algorithms.ByName("flowlets")
	_, norm := build(a)
	fmt.Println("-- after branch removal (Figure 5) --")
	fmt.Print(passes.Print(norm.Straight))
	fmt.Println("-- after state flank rewriting (Figure 6) --")
	fmt.Print(passes.Print(norm.Flanked))
	fmt.Println("-- after SSA (Figure 7) --")
	fmt.Print(passes.Print(norm.SSA))
	fmt.Println("-- three-address code (Figure 8) --")
	fmt.Print(norm.IR.String())
}

// throughput measures the simulator's data-path rates on flowlet
// switching: the map-based wrapper, the slot-vector header fast path, the
// batched path, and the sharded multi-pipeline (paper §2's one packet per
// clock, here in software packets per wall-second). Sharded speedup needs
// >1 CPU; on a single core it only demonstrates dispatch overhead.
func throughput() {
	fmt.Printf("== Simulator throughput (flowlet switching, GOMAXPROCS=%d) ==\n", runtime.GOMAXPROCS(0))
	a, _ := algorithms.ByName("flowlets")
	info, norm := build(a)
	p, ok, err := codegen.LeastTarget(info, norm.IR)
	if !ok {
		fatal(err)
	}
	const n = 1 << 20
	rate := func(pkts int, dt time.Duration) string {
		return fmt.Sprintf("%10.2f Mpkts/s", float64(pkts)/dt.Seconds()/1e6)
	}

	m, err := banzai.New(p)
	if err != nil {
		fatal(err)
	}
	trace := workload.FlowletTrace(1, 256, 4096, 10, 50)
	start := time.Now()
	for i := 0; i < n; i++ {
		m.Tick(trace[i&4095])
	}
	fmt.Printf("%-28s %s\n", "map Tick (codec per packet)", rate(n, time.Since(start)))

	m2, err := banzai.New(p)
	if err != nil {
		fatal(err)
	}
	hs := workload.FlowletTraceHeaders(m2.Layout(), 1, 256, 4096, 10, 50)
	start = time.Now()
	for i := 0; i < n; i++ {
		m2.TickH(hs[i&4095])
	}
	fmt.Printf("%-28s %s\n", "header TickH (zero-alloc)", rate(n, time.Since(start)))

	m3, err := banzai.New(p)
	if err != nil {
		fatal(err)
	}
	hs3 := workload.FlowletTraceHeaders(m3.Layout(), 1, 256, 4096, 10, 50)
	start = time.Now()
	for i := 0; i < n/4096; i++ {
		if err := m3.ProcessBatch(hs3); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%-28s %s\n", "header ProcessBatch", rate(n, time.Since(start)))

	m4, err := banzai.New(p)
	if err != nil {
		fatal(err)
	}
	hs4 := workload.FlowletTraceHeaders(m4.Layout(), 1, 256, 4096, 10, 50)
	start = time.Now()
	for i := 0; i < n/4096; i++ {
		if err := m4.ProcessBatchStageMajor(hs4); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%-28s %s\n", "header batch (stage-major)", rate(n, time.Since(start)))

	for _, shards := range []int{2, 4} {
		sm, err := banzai.NewSharded(p, shards, "sport", "dport")
		if err != nil {
			fatal(err)
		}
		hss := workload.FlowletTraceHeaders(sm.Layout(), 1, 256, 4096, 10, 50)
		start = time.Now()
		for i := 0; i < n/4096; i++ {
			if err := sm.ProcessBatch(hss); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("%-28s %s\n", fmt.Sprintf("sharded ×%d ProcessBatch", shards), rate(n, time.Since(start)))
		sm.Close()
	}
	fmt.Println()
}

// optReport prints, for every compiling catalog algorithm and every
// scheduler rank transaction, what the machine-build-time optimizer
// removed: configured atoms, micro-ops and header slots before and after
// (rank transactions build with liveness narrowed to the rank field,
// exactly as the pifo engines build them).
func optReport() {
	fmt.Println("== Build-time program optimizer (constant folding, copy coalescing, DCE, layout compaction) ==")
	fmt.Printf("%-22s %12s %12s %12s %8s %8s %8s %6s\n",
		"program", "atoms", "ops", "slots", "folded", "propag", "coalesce", "dead")
	row := func(name string, m *banzai.Machine) {
		st := m.OptStats()
		fmt.Printf("%-22s %6d->%-5d %6d->%-5d %6d->%-5d %8d %8d %8d %6d\n",
			name, st.AtomsBefore, st.AtomsAfter, st.OpsBefore, st.OpsAfter,
			st.SlotsBefore, st.SlotsAfter, st.Folded, st.Propagated, st.Coalesced, st.Dead)
	}
	for _, a := range algorithms.All() {
		if !a.Maps {
			continue
		}
		p, err := codegen.CompileLeastSource(a.Source)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", a.Name, err))
		}
		m, err := banzai.New(p)
		if err != nil {
			fatal(err)
		}
		row(a.Name, m)
	}
	fmt.Println("-- scheduler rank transactions (roots narrowed to the rank field) --")
	for _, s := range algorithms.Schedulers() {
		p, err := codegen.CompileLeastSource(s.Source)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", s.Name, err))
		}
		m, err := banzai.NewWith(p, banzai.Options{OutputFields: []string{s.RankField}})
		if err != nil {
			fatal(err)
		}
		row(s.Name, m)
	}
	fmt.Println()
}

// sched exercises the PIFO scheduling subsystem: the multi-tenant
// weighted-flow trace saturates one egress port under each scheduler in
// the catalog, and the tenants' departed-byte shares show what each rank
// transaction enforces. A token-bucket-shaped run and the per-port
// statistics (the switch's observability surface) close the report.
func sched() {
	fmt.Println("== PIFO egress scheduling (multi-tenant trace, one saturated port) ==")
	tenants := []workload.TenantSpec{
		{Weight: 1, Flows: 4},
		{Weight: 2, Flows: 4},
		{Weight: 4, Flows: 4},
	}
	ingress, err := codegen.CompileLeastSource(algorithms.SchedIngress)
	if err != nil {
		fatal(err)
	}

	schedulers := []struct {
		name  string
		build func() (switchsim.Scheduler, error)
	}{
		{"fifo (default)", func() (switchsim.Scheduler, error) { return nil, nil }},
		{"stfq_rank", func() (switchsim.Scheduler, error) {
			spec, err := pifo.NamedSpec("stfq_rank")
			return pifo.Flat(spec), err
		}},
		{"strict_priority_rank", func() (switchsim.Scheduler, error) {
			spec, err := pifo.NamedSpec("strict_priority_rank")
			return pifo.Flat(spec), err
		}},
		{"wrr_rank", func() (switchsim.Scheduler, error) {
			spec, err := pifo.NamedSpec("wrr_rank")
			return pifo.Flat(spec), err
		}},
	}

	fmt.Printf("%-22s %28s   %s\n", "scheduler", "tenant shares (w=1,2,4)", "weighted ideal 0.143,0.286,0.571")
	for _, s := range schedulers {
		sc, err := s.build()
		if err != nil {
			fatal(err)
		}
		sw, err := switchsim.New(ingress, switchsim.Config{
			Ports:               1,
			QueueCapBytes:       1 << 24,
			ServiceBytesPerTick: 600,
			Scheduler:           sc,
		})
		if err != nil {
			fatal(err)
		}
		trace, _ := workload.MultiTenantTrace(5, tenants, 30000, 5)
		bytes := make([]int64, len(tenants))
		var total int64
		for _, pkt := range trace {
			for sw.Now() < int64(pkt["arrival"]) {
				for _, d := range sw.Tick() {
					if d.Departed > 1000 { // warmup
						bytes[d.Pkt["tenant"]] += d.Size
						total += d.Size
					}
				}
			}
			if _, _, _, err := sw.Inject(pkt, int64(pkt["size_bytes"])); err != nil {
				fatal(err)
			}
		}
		if total == 0 {
			fatal(fmt.Errorf("scheduler %s served nothing", s.name))
		}
		fmt.Printf("%-22s %9.3f %9.3f %9.3f\n", s.name,
			float64(bytes[0])/float64(total),
			float64(bytes[1])/float64(total),
			float64(bytes[2])/float64(total))
	}

	// Shaping: a burst through a token-bucket-shaped node leaves paced at
	// the bucket rate no matter how fast the port drains.
	spec, err := pifo.NamedSpec("token_bucket_shape")
	if err != nil {
		fatal(err)
	}
	shaped := &pifo.Tree{Root: pifo.NodeSpec{
		Name:     "root",
		Children: []pifo.NodeSpec{{Name: "shaped", Shaper: &spec}},
	}}
	sw, err := switchsim.New(ingress, switchsim.Config{
		Ports:               1,
		ServiceBytesPerTick: 1 << 20,
		Scheduler:           shaped,
	})
	if err != nil {
		fatal(err)
	}
	const burst = 40
	for i := 0; i < burst; i++ {
		pkt := interp.Packet{"tenant": 0, "flow": 0, "prio": 0, "size_bytes": 64, "cost": 64, "arrival": 0}
		if _, _, _, err := sw.Inject(pkt, 64); err != nil {
			fatal(err)
		}
	}
	deps := sw.Drain()
	fmt.Printf("\ntoken_bucket_shape: %d-packet burst (64 B each) drained over %d ticks (bucket rate 8 B/tick)\n",
		burst, deps[len(deps)-1].Departed)

	// The per-port statistics satellite: a 4-port STFQ switch under the
	// same trace, routed by flow.
	spec, err = pifo.NamedSpec("stfq_rank")
	if err != nil {
		fatal(err)
	}
	sw4, err := switchsim.New(ingress, switchsim.Config{
		Ports:               4,
		QueueCapBytes:       64 << 10,
		ServiceBytesPerTick: 600,
		RouteField:          "flow",
		Scheduler:           pifo.Flat(spec),
	})
	if err != nil {
		fatal(err)
	}
	trace, _ := workload.MultiTenantTrace(7, tenants, 30000, 5)
	for _, pkt := range trace {
		for sw4.Now() < int64(pkt["arrival"]) {
			sw4.Tick()
		}
		if _, _, _, err := sw4.Inject(pkt, int64(pkt["size_bytes"])); err != nil {
			fatal(err)
		}
	}
	sw4.Drain()
	fmt.Println("\nper-port stats (4-port STFQ switch, routed by flow):")
	fmt.Printf("%4s %10s %12s %8s %12s %14s %12s %10s\n",
		"port", "enqueues", "bytes", "drops", "departures", "departed B", "max queue B", "max depth")
	for p, st := range sw4.Stats() {
		fmt.Printf("%4d %10d %12d %8d %12d %14d %12d %10d\n",
			p, st.Enqueues, st.Bytes, st.Drops, st.Departures, st.DepartedBytes, st.MaxQueue, st.MaxDepth)
	}
	fmt.Println()
}

func figure9() {
	a, _ := algorithms.ByName("flowlets")
	_, norm := build(a)
	fmt.Print(pvsm.Dot(norm.IR))
}
