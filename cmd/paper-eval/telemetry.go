package main

// The -telemetry experiment: the two-sided observability story (PR 8).
// Each routing policy replays the -faults outage scenario with both
// telemetry planes on. The data plane is the int_stamp packet
// transaction — every hop stamps hop count, max/summed queue depth and
// a path digest into the header, so the sink can reconstruct which
// leaf>spine>leaf paths the policy actually used (CONGA spreads, ECMP
// hashes blindly, flowlets sit between). The control plane is the
// zero-alloc metrics core — per-switch counters and log2 histograms plus
// a deterministic sampled event trace. Everything printed is ordered
// (sorted names, sorted digests), so a fixed seed reproduces this report
// byte for byte.

import (
	"fmt"
	"sort"
	"strings"

	"domino/internal/netsim"
	"domino/internal/telemetry"
)

func telemetryExperiment(seed int64) {
	fmt.Println("== In-band telemetry + metrics core (faulted leaf-spine run, both planes on) ==")
	fmt.Println("   per-path packet counts are decoded from the INT path digest each packet")
	fmt.Println("   accumulated hop by hop (digest = digest*31 + switch_id, a packet transaction);")
	fmt.Println("   histograms are the control-plane sink's log2 buckets (p50/p99 upper bounds)")
	fmt.Println()
	for _, routing := range []string{"ecmp_route", "flowlet_route", "conga_route"} {
		reg := telemetry.NewRegistry()
		ring := telemetry.NewRing(4096, 8, uint64(seed))
		cfg := netsim.FaultExperimentConfig{}
		cfg.Seed = seed
		cfg.Routing = routing
		cfg.INT = true
		cfg.ECN = true
		cfg.Telemetry = reg
		cfg.Ring = ring
		res, err := netsim.RunLeafSpineFaults(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("-- %s --\n", routing)

		// Which paths carried the data: the INT digests, decoded against
		// the topology. A rerouting policy shifts weight off the failed
		// leaf0>spine0 uplink during the outage; ECMP cannot.
		paths := res.LS.NamedPathCounts()
		var total int64
		for _, pc := range paths {
			total += pc.Pkts
		}
		fmt.Printf("   %-24s %10s %7s\n", "path (from INT digest)", "pkts", "share")
		for _, pc := range paths {
			fmt.Printf("   %-24s %10d %6.1f%%\n", pc.Name, pc.Pkts, 100*float64(pc.Pkts)/float64(total))
		}

		// The INT record itself, aggregated at the sink.
		fmt.Printf("   %-26s %10s %8s %8s %8s %8s\n", "histogram", "count", "mean", "p50<=", "p99<=", "max")
		for _, name := range []string{"int.hops", "int.qmax_bytes", "int.qdelay_bytes",
			"net.delivery_latency_ticks", "net.fct_ticks"} {
			h := reg.Histogram(name)
			fmt.Printf("   %-26s %10d %8.1f %8d %8d %8d\n",
				name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
		}

		// Control-plane roll-up: merge every switch's per-port queueing
		// delay histograms into one per-switch line (Histogram.Merge is
		// exact on the integer buckets, so aggregation order is moot).
		type agg struct {
			name string
			h    *telemetry.Histogram
		}
		bySwitch := map[string]*telemetry.Histogram{}
		for _, name := range reg.HistogramNames() {
			i := strings.Index(name, ".qdelay_ticks.p")
			if !strings.HasPrefix(name, "sw.") || i < 0 {
				continue
			}
			key := name[len("sw."):i]
			if bySwitch[key] == nil {
				bySwitch[key] = &telemetry.Histogram{}
			}
			bySwitch[key].Merge(reg.Histogram(name))
		}
		var sws []agg
		for k, h := range bySwitch {
			sws = append(sws, agg{k, h})
		}
		sort.Slice(sws, func(i, j int) bool { return sws[i].name < sws[j].name })
		fmt.Printf("   %-24s %10s %8s %8s %8s\n", "switch qdelay (merged)", "dequeues", "mean", "p99<=", "max")
		for _, s := range sws {
			fmt.Printf("   %-24s %10d %8.1f %8d %8d\n",
				s.name, s.h.Count(), s.h.Mean(), s.h.Quantile(0.99), s.h.Max())
		}

		// The sampled event trace: 1-in-8 of everything the fabric did.
		kc := ring.KindCounts()
		var parts []string
		for k, c := range kc {
			if c > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", telemetry.Kind(k), c))
			}
		}
		fmt.Printf("   trace ring: %d sampled of %d seen (%s)\n",
			ring.Len(), ring.Seen(), strings.Join(parts, " "))
		fmt.Printf("   ecn marked: %d of %d delivered\n\n",
			reg.Counter("net.ecn_marked_pkts").Value(), res.Totals.DeliveredPkts)
	}
	fmt.Println("   the data plane told the story on its own headers: the digest column is")
	fmt.Println("   what CONGA-style rerouting looks like from inside the packets, with no")
	fmt.Println("   simulator introspection — exactly the paper's programmable-switch thesis.")
	fmt.Println()
}
