package main

import (
	"strings"
	"testing"
)

// TestRunFlagErrors: bad invocations come back as errors (main turns
// them into exit 1 + stderr) instead of being silently ignored.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-table", "99"},
		{"-figure", "nope"},
		{"stray-positional"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) = nil, want error", args)
		}
	}
	if err := run([]string{"-table", "99"}); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Errorf("table error unclear: %v", err)
	}
}

// TestRunSmoke: a cheap good invocation succeeds end to end.
func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-table", "6"}); err != nil {
		t.Fatal(err)
	}
}
