package main

import (
	"strings"
	"testing"
)

// TestRunFlagErrors: bad invocations come back as errors (main turns
// them into exit 1 + stderr) instead of being silently ignored.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-table", "99"},
		{"-figure", "nope"},
		{"stray-positional"},
		{"-seed", "0", "-faults"},
		{"-seed", "-3", "-reliable"},
		{"-soak", "-1"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) = nil, want error", args)
		}
	}
	if err := run([]string{"-table", "99"}); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Errorf("table error unclear: %v", err)
	}
}

// TestRunSmoke: a cheap good invocation succeeds end to end.
func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-table", "6"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunFaultsSeeded: the fault experiment honors a non-default -seed
// end to end (the scenario rebuilds its trace, schedule and jitter from
// it; any seed must drain clean through the conservation oracles).
func TestRunFaultsSeeded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-routing fault sweep")
	}
	if err := run([]string{"-faults", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunReliableSeeded: same for the raw-vs-reliable comparison.
func TestRunReliableSeeded(t *testing.T) {
	if testing.Short() {
		t.Skip("raw+reliable sweep over three routings")
	}
	if err := run([]string{"-reliable", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunSoakSmall: a handful of chaos schedules end to end through the
// CLI path (the full-size soak runs via `make soak`).
func TestRunSoakSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	if err := run([]string{"-soak", "8", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}
